"""Cluster simulator and control plane: state, scheduler, collector, CronJob,
and the IPC-vs-RPC network performance model."""

from repro.cluster.collector import DataCollector
from repro.cluster.cronjob import CronJobController, CycleReport
from repro.cluster.events import (
    DynamicCluster,
    EventSchedule,
    MachineDrainEvent,
    ScaleEvent,
    TrafficShiftEvent,
)
from repro.cluster.replay import (
    EventStreamCursor,
    EventTrace,
    MachineAdd,
    MachineDrain,
    ReplayWorld,
    ServiceDeploy,
    ServiceScale,
    ServiceTeardown,
    SpotReclaim,
    TrafficShift,
    event_from_dict,
    synthesize_trace,
)
from repro.cluster.simulation import DynamicSimulation, SimulationTick, make_world
from repro.cluster.network import (
    NetworkParameters,
    NetworkSimulator,
    PairSeries,
    ProductionReport,
    normalize_series,
    relative_improvement,
)
from repro.cluster.scheduler import (
    DefaultScheduler,
    affinity_score,
    binpack_score,
    least_allocated_score,
    spread_score,
)
from repro.cluster.state import ClusterSnapshot, ClusterState

__all__ = [
    "ClusterSnapshot",
    "ClusterState",
    "CronJobController",
    "CycleReport",
    "DataCollector",
    "DefaultScheduler",
    "DynamicCluster",
    "DynamicSimulation",
    "EventSchedule",
    "EventStreamCursor",
    "EventTrace",
    "MachineAdd",
    "MachineDrain",
    "MachineDrainEvent",
    "ReplayWorld",
    "ScaleEvent",
    "ServiceDeploy",
    "ServiceScale",
    "ServiceTeardown",
    "SimulationTick",
    "SpotReclaim",
    "TrafficShift",
    "TrafficShiftEvent",
    "event_from_dict",
    "make_world",
    "synthesize_trace",
    "NetworkParameters",
    "NetworkSimulator",
    "PairSeries",
    "ProductionReport",
    "affinity_score",
    "binpack_score",
    "least_allocated_score",
    "normalize_series",
    "relative_improvement",
    "spread_score",
]
