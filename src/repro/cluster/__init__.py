"""Cluster simulator and control plane: state, scheduler, collector, CronJob,
and the IPC-vs-RPC network performance model."""

from repro.cluster.collector import DataCollector
from repro.cluster.cronjob import CronJobController, CycleReport
from repro.cluster.events import (
    DynamicCluster,
    EventSchedule,
    MachineDrainEvent,
    ScaleEvent,
    TrafficShiftEvent,
)
from repro.cluster.simulation import DynamicSimulation, SimulationTick, make_world
from repro.cluster.network import (
    NetworkParameters,
    NetworkSimulator,
    PairSeries,
    ProductionReport,
    normalize_series,
    relative_improvement,
)
from repro.cluster.scheduler import (
    DefaultScheduler,
    affinity_score,
    binpack_score,
    least_allocated_score,
    spread_score,
)
from repro.cluster.state import ClusterSnapshot, ClusterState

__all__ = [
    "ClusterSnapshot",
    "ClusterState",
    "CronJobController",
    "CycleReport",
    "DataCollector",
    "DefaultScheduler",
    "DynamicCluster",
    "DynamicSimulation",
    "EventSchedule",
    "MachineDrainEvent",
    "ScaleEvent",
    "SimulationTick",
    "TrafficShiftEvent",
    "make_world",
    "NetworkParameters",
    "NetworkSimulator",
    "PairSeries",
    "ProductionReport",
    "affinity_score",
    "binpack_score",
    "least_allocated_score",
    "normalize_series",
    "relative_improvement",
    "spread_score",
]
