"""Dynamic cluster events: the churn that motivates continuous optimization.

Paper Section III-A: "the cluster's state may change for various reasons,
such as application updates or user modifications.  After these changes,
the overall gained affinity may no longer be satisfactory" — hence the
half-hourly CronJob.  This module supplies that churn for the simulator:

* :class:`ScaleEvent` — a service's demand grows or shrinks (autoscaling,
  rollouts); new containers land via the default scheduler, removals pick
  the least-affine replicas.
* :class:`MachineDrainEvent` — a machine is drained (maintenance,
  hardware failure); its containers are evicted and re-placed.
* :class:`TrafficShiftEvent` — traffic between a service pair changes
  volume, shifting the affinity landscape under the optimizer's feet.

Events apply against a :class:`~repro.cluster.state.ClusterState` plus the
mutable QPS map the :class:`~repro.cluster.collector.DataCollector` reads,
so the next CronJob cycle sees the changed world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cluster.scheduler import DefaultScheduler
from repro.cluster.state import ClusterState
from repro.core.problem import Machine, RASAProblem, Service
from repro.exceptions import ClusterStateError


@runtime_checkable
class ClusterEvent(Protocol):
    """Anything that can mutate the simulated world at a point in time."""

    #: Simulated time (seconds) at which the event fires.
    at_seconds: float

    def apply(self, world: "DynamicCluster") -> str:
        """Mutate the world; returns a human-readable description."""
        ...  # pragma: no cover - protocol


@dataclass
class DynamicCluster:
    """A cluster whose problem definition changes over time.

    Wraps the live :class:`ClusterState` plus the mutable pieces the static
    problem cannot express: the demand vector and the traffic map.  After
    any structural change, :meth:`rebuild_problem` produces a fresh
    :class:`RASAProblem` and re-wraps the state around it, preserving the
    placement.

    Attributes:
        state: The live placement state.
        qps: Mutable traffic map feeding the data collector.
        demand_overrides: Current demands where they differ from the
            original problem.
    """

    state: ClusterState
    qps: dict[tuple[str, str], float]
    demand_overrides: dict[str, int] = field(default_factory=dict)
    drained_machines: set[str] = field(default_factory=set)
    scheduler: DefaultScheduler = field(default_factory=DefaultScheduler)

    # ------------------------------------------------------------------
    def current_demand(self, service: str) -> int:
        """The service's demand after any scale events."""
        if service in self.demand_overrides:
            return self.demand_overrides[service]
        problem = self.state.problem
        return problem.services[problem.service_index(service)].demand

    def rebuild_problem(self) -> RASAProblem:
        """Re-materialize the problem with current demands, traffic, and
        machine capacities (drained machines get zero capacity), carrying
        the placement over."""
        old = self.state.problem
        services = [
            Service(
                name=svc.name,
                demand=self.current_demand(svc.name),
                requests=dict(svc.requests),
                priority=svc.priority,
            )
            for svc in old.services
        ]
        machines = []
        for machine in old.machines:
            if machine.name in self.drained_machines:
                machines.append(
                    Machine(
                        name=machine.name,
                        capacity={r: 0.0 for r in machine.capacity},
                        spec=machine.spec,
                    )
                )
            else:
                machines.append(machine)
        from repro.core.affinity import AffinityGraph

        problem = RASAProblem(
            services=services,
            machines=machines,
            affinity=AffinityGraph(dict(self.qps)),
            anti_affinity=old.anti_affinity,
            schedulable=old.schedulable,
            resource_types=old.resource_types,
            current_assignment=self.state.placement,
        )
        # In-place rebind keeps every holder of this state object (CronJob
        # controllers, replay cursors) pointed at the live world.
        self.state.rebind(problem)
        return problem


@dataclass
class ScaleEvent:
    """Scale a service to a new demand.

    Scale-ups place new containers via the default scheduler; scale-downs
    remove the replicas contributing the least gained affinity first.
    """

    at_seconds: float
    service: str
    new_demand: int

    def apply(self, world: DynamicCluster) -> str:
        if self.new_demand <= 0:
            raise ClusterStateError(
                f"scale target for {self.service!r} must be positive"
            )
        old_demand = world.current_demand(self.service)
        world.demand_overrides[self.service] = self.new_demand
        problem = world.rebuild_problem()
        state = world.state
        s = problem.service_index(self.service)
        placed = int(state.placement[s].sum())

        if self.new_demand > placed:
            for _ in range(self.new_demand - placed):
                if world.scheduler.place_one(state, self.service) is None:
                    break
        elif self.new_demand < placed:
            for _ in range(placed - self.new_demand):
                machine = least_affine_host(state, s)
                if machine is None:
                    break
                state.delete_container(self.service, machine)
        return f"scaled {self.service} {old_demand} -> {self.new_demand}"


@dataclass
class MachineDrainEvent:
    """Drain a machine: evict its containers and re-place them elsewhere."""

    at_seconds: float
    machine: str

    def apply(self, world: DynamicCluster) -> str:
        state = world.state
        problem = state.problem
        m = problem.machine_index(self.machine)
        evicted = 0
        for s in np.nonzero(state.placement[:, m])[0]:
            count = int(state.placement[s, m])
            for _ in range(count):
                state.delete_container(problem.services[s].name, self.machine)
                evicted += 1
        world.drained_machines.add(self.machine)
        world.rebuild_problem()
        # Eviction destinations come from the default scheduler.
        replaced = world.scheduler.place_missing(world.state)
        return f"drained {self.machine}: evicted {evicted}, re-placed {replaced}"


@dataclass
class TrafficShiftEvent:
    """Multiply the traffic volume of one service pair."""

    at_seconds: float
    pair: tuple[str, str]
    factor: float

    def apply(self, world: DynamicCluster) -> str:
        if self.factor <= 0:
            raise ClusterStateError("traffic factor must be positive")
        key = self.pair if self.pair[0] <= self.pair[1] else (self.pair[1], self.pair[0])
        if key not in world.qps:
            raise ClusterStateError(f"no traffic recorded between {key}")
        world.qps[key] *= self.factor
        world.rebuild_problem()
        return f"traffic {key[0]}<->{key[1]} x{self.factor:g}"


def least_affine_host(state: ClusterState, service: int) -> str | None:
    """Host machine whose replica of ``service`` contributes the least
    gained affinity (the natural scale-down victim)."""
    problem = state.problem
    hosts = np.nonzero(state.placement[service])[0]
    if hosts.size == 0:
        return None
    name = problem.services[service].name
    neighbors = problem.affinity.neighbors(name)
    demands = problem.demands.astype(float)
    x = state.placement

    def contribution(m: int) -> float:
        total = 0.0
        for other, w in neighbors.items():
            t = problem.service_index(other)
            before = min(x[service, m] / demands[service], x[t, m] / demands[t])
            after = min((x[service, m] - 1) / demands[service], x[t, m] / demands[t])
            total += w * (before - after)
        return total

    worst = min(hosts, key=lambda m: contribution(int(m)))
    return problem.machines[int(worst)].name


class EventSchedule:
    """Time-ordered event list driving a dynamic simulation."""

    def __init__(self, events: list[ClusterEvent] | None = None) -> None:
        self._events: list[ClusterEvent] = sorted(
            events or [], key=lambda e: e.at_seconds
        )

    def add(self, event: ClusterEvent) -> None:
        """Insert an event, keeping time order."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.at_seconds)

    def due(self, now: float) -> list[ClusterEvent]:
        """Pop every event scheduled at or before ``now``."""
        due = [e for e in self._events if e.at_seconds <= now]
        self._events = [e for e in self._events if e.at_seconds > now]
        return due

    def __len__(self) -> int:
        return len(self._events)
