"""Data collector: turns live cluster state into RASA algorithm input.

The paper's collector gathers the service list, machine list, current
deployments, and traffic metrics per cluster (Section III-A).  Here the
traffic metrics come from the simulated monitoring system: the generator's
ground-truth QPS jittered per collection window, so consecutive CronJob
cycles see realistically drifting affinity weights.

With a :class:`~repro.faults.FaultInjector`, the collector can also model a
monitoring plane that misbehaves: a *stale* snapshot (the previous cycle's
problem is served again, deployments and all) or a *partial* one (a
fraction of traffic edges is missing).  Both are downstream-survivable: a
stale deployment map produces migration commands the CronJob skips and
repairs, and missing edges merely under-inform the optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.affinity import AffinityGraph
from repro.core.problem import RASAProblem
from repro.faults import SNAPSHOT_FAULT_STALE, FaultInjector
from repro.obs import get_logger, kv


class DataCollector:
    """Produces RASA input problems from cluster state and traffic metrics.

    Args:
        qps: Ground-truth traffic per service pair (the monitoring system's
            source of affinity weights).  May be None when ``stream`` is
            given.
        traffic_jitter_sigma: Lognormal sigma of per-window measurement
            drift; 0 disables jitter.
        seed: RNG seed for the jitter stream.
        stream: Optional replay cursor
            (:class:`~repro.cluster.replay.EventStreamCursor`).  When set,
            each collection window reads the cursor's *live* traffic map —
            which trace events mutate between cycles — instead of the
            static ``qps`` snapshot.
    """

    def __init__(
        self,
        qps: dict[tuple[str, str], float] | None = None,
        traffic_jitter_sigma: float = 0.05,
        seed: int = 0,
        stream=None,
    ) -> None:
        if qps is None and stream is None:
            raise ValueError("DataCollector needs a qps map or a stream")
        self.qps = dict(qps) if qps is not None else {}
        self.stream = stream
        self.traffic_jitter_sigma = traffic_jitter_sigma
        self._rng = np.random.default_rng(seed)
        self._last_problem: RASAProblem | None = None

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_payload(self) -> dict:
        """JSON-safe capture of the collector's evolving state.

        Two things advance as cycles run: the jitter RNG and the memory of
        the last collected problem (which gates the stale-snapshot fault
        draw — see :meth:`collect`).  Both must survive a restart for a
        resumed run to stay bit-identical to an uninterrupted one.
        """
        from repro.workloads.trace_io import problem_to_dict

        return {
            "rng": self._rng.bit_generator.state,
            "last_problem": (
                problem_to_dict(self._last_problem)
                if self._last_problem is not None
                else None
            ),
        }

    def restore_state(self, payload: dict) -> None:
        """Restore a capture written by :meth:`state_payload`."""
        from repro.workloads.trace_io import problem_from_dict

        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = payload["rng"]
        last = payload.get("last_problem")
        self._last_problem = (
            problem_from_dict(last) if last is not None else None
        )

    def collect(
        self,
        state: ClusterState,
        *,
        injector: FaultInjector | None = None,
    ) -> RASAProblem:
        """Snapshot the cluster into a fresh :class:`RASAProblem`.

        The returned problem carries the current placement as
        ``current_assignment``, jittered traffic as affinity weights, and a
        schedulability matrix with churn-tagged machines masked out (so the
        optimizer cannot re-populate machines under the 3-day rollback tag).

        Args:
            injector: Optional fault source.  A *stale* fault replays the
                previous collection verbatim; a non-zero drop fraction
                removes traffic edges from this window's snapshot.  None
                (the default) always collects fresh, exactly as before.
        """
        if injector is not None and self._last_problem is not None:
            if injector.snapshot_fault() == SNAPSHOT_FAULT_STALE:
                stale = self._last_problem
                # Under structural churn (replay deploys/reclaims) the
                # previous window may describe a different cluster; serving
                # it would hand the optimizer a phantom world.  The fault
                # draw above still consumed its RNG, so determinism with
                # and without this guard tripping is preserved.
                if (
                    stale.service_names() == state.problem.service_names()
                    and stale.machine_names() == state.problem.machine_names()
                ):
                    get_logger("cluster.collector").warning(
                        "stale snapshot %s",
                        kv(services=stale.num_services),
                    )
                    return stale
                get_logger("cluster.collector").warning(
                    "stale snapshot discarded %s",
                    kv(reason="cluster structure changed"),
                )

        base = state.problem
        live_qps = self.stream.qps if self.stream is not None else self.qps
        weights: dict[tuple[str, str], float] = {}
        for pair, volume in live_qps.items():
            jitter = (
                float(self._rng.lognormal(0.0, self.traffic_jitter_sigma))
                if self.traffic_jitter_sigma > 0
                else 1.0
            )
            weights[pair] = volume * jitter

        if injector is not None and weights:
            dropped = injector.dropped_edges(sorted(weights))
            if dropped:
                get_logger("cluster.collector").warning(
                    "partial snapshot %s",
                    kv(dropped_edges=len(dropped), total_edges=len(weights)),
                )
                for pair in dropped:
                    del weights[pair]

        schedulable = base.schedulable.copy()
        for m, machine in enumerate(base.machines):
            if not state.is_schedulable_machine(machine.name):
                schedulable[:, m] = False

        problem = RASAProblem(
            services=base.services,
            machines=base.machines,
            affinity=AffinityGraph(weights),
            anti_affinity=base.anti_affinity,
            schedulable=schedulable,
            resource_types=base.resource_types,
            current_assignment=state.placement,
        )
        self._last_problem = problem
        return problem
