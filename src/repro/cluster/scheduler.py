"""Kubernetes-style default scheduler: the filter & score loop.

The production ORIGINAL placement combines first-fit with K8s filter/score;
the cluster also relies on the default scheduler to pick up containers the
RASA pipeline failed to deploy and to re-place rolled-back containers.  This
module implements that two-phase loop:

* **filter** — drop machines violating schedulability, resources, or
  anti-affinity for the container at hand;
* **score** — rank surviving machines with pluggable scoring functions
  (spread / binpack / affinity), mirroring K8s scheduler plugins.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cluster.state import ClusterState
from repro.exceptions import ClusterStateError

#: A scoring function: (state, service_index, feasible_machine_mask) -> scores.
ScoreFunction = Callable[[ClusterState, int, np.ndarray], np.ndarray]


def spread_score(state: ClusterState, service: int, mask: np.ndarray) -> np.ndarray:
    """Prefer machines hosting fewer containers of this service (HA spread)."""
    counts = state.placement[service].astype(float)
    return -counts


def binpack_score(state: ClusterState, service: int, mask: np.ndarray) -> np.ndarray:
    """Prefer fuller machines (consolidation / cost saving)."""
    capacity = state.problem.capacities_matrix
    with np.errstate(divide="ignore", invalid="ignore"):
        fullness = np.where(
            capacity > 0, 1.0 - state.free_resources() / capacity, 0.0
        ).mean(axis=1)
    return fullness


def least_allocated_score(state: ClusterState, service: int, mask: np.ndarray) -> np.ndarray:
    """Prefer emptier machines (K8s LeastAllocated default)."""
    return -binpack_score(state, service, mask)


def affinity_score(state: ClusterState, service: int, mask: np.ndarray) -> np.ndarray:
    """Prefer machines already hosting affinity neighbors (the K8s+ scoring).

    Scores each machine by the marginal gained affinity of adding one
    container of the service there — the same delta the greedy packer uses.
    """
    problem = state.problem
    name = problem.services[service].name
    neighbors = [
        (problem.service_index(other), weight)
        for other, weight in problem.affinity.neighbors(name).items()
    ]
    if not neighbors:
        return np.zeros(problem.num_machines)
    demands = problem.demands.astype(float)
    x = state.placement
    current = x[service].astype(float)
    delta = np.zeros(problem.num_machines)
    for t, w in neighbors:
        other = x[t].astype(float) / demands[t]
        before = np.minimum(current / demands[service], other)
        after = np.minimum((current + 1.0) / demands[service], other)
        delta += w * (after - before)
    return delta


class DefaultScheduler:
    """Online filter & score scheduler.

    Args:
        scorers: Scoring functions with weights; scores are min-max
            normalized per function and combined linearly, like K8s plugin
            weights.  Defaults to the stock spread + least-allocated mix.
    """

    def __init__(
        self,
        scorers: Sequence[tuple[ScoreFunction, float]] | None = None,
    ) -> None:
        self.scorers: list[tuple[ScoreFunction, float]] = list(
            scorers
            if scorers is not None
            else [(spread_score, 1.0), (least_allocated_score, 1.0)]
        )

    # ------------------------------------------------------------------
    def filter(self, state: ClusterState, service: int) -> np.ndarray:
        """Feasibility mask over machines for one more container of
        ``service`` (schedulability, resources, anti-affinity, churn tags)."""
        problem = state.problem
        mask = problem.schedulable[service].copy()
        request = problem.requests_matrix[service]
        mask &= (state.free_resources() >= request - 1e-9).all(axis=1)
        x = state.placement
        for rule in problem.anti_affinity:
            if problem.services[service].name in rule.services:
                members = [problem.service_index(s) for s in rule.services]
                mask &= x[members].sum(axis=0) < rule.limit
        for m, machine in enumerate(problem.machines):
            if not state.is_schedulable_machine(machine.name):
                mask[m] = False
        return mask

    def score(self, state: ClusterState, service: int, mask: np.ndarray) -> np.ndarray:
        """Weighted, normalized combination of all scoring functions."""
        total = np.zeros(state.problem.num_machines)
        for scorer, weight in self.scorers:
            raw = scorer(state, service, mask)
            span = raw.max() - raw.min()
            normalized = (raw - raw.min()) / span if span > 0 else np.zeros_like(raw)
            total += weight * normalized
        return total

    def place_one(self, state: ClusterState, service_name: str) -> str | None:
        """Filter + score + bind one container; returns the machine name or
        None when no machine is feasible."""
        service = state.problem.service_index(service_name)
        mask = self.filter(state, service)
        if not mask.any():
            return None
        scores = self.score(state, service, mask)
        scores[~mask] = -np.inf
        machine = state.problem.machines[int(np.argmax(scores))].name
        state.create_container(service_name, machine)
        return machine

    def place_missing(self, state: ClusterState) -> int:
        """Place every container short of its service's demand.

        Returns:
            The number of containers successfully placed.
        """
        placed = 0
        problem = state.problem
        for s, svc in enumerate(problem.services):
            missing = int(problem.demands[s] - state.placement[s].sum())
            for _ in range(max(0, missing)):
                try:
                    machine = self.place_one(state, svc.name)
                except ClusterStateError:
                    machine = None
                if machine is None:
                    break
                placed += 1
        return placed
