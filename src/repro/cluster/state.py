"""Mutable cluster state for the control-plane simulator.

Wraps a :class:`~repro.core.problem.RASAProblem` with the live container
placement and traffic metrics, and offers the container-level operations the
CronJob workflow performs (delete/create, snapshots, utilization queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import RASAProblem
from repro.core.solution import Assignment
from repro.exceptions import ClusterStateError


@dataclass
class ClusterSnapshot:
    """Immutable view of the cluster at one instant (the Data Collector's
    output: service list, machine list, deployments, traffic metrics)."""

    problem: RASAProblem
    assignment: Assignment
    timestamp: float


class ClusterState:
    """Live cluster: placement matrix plus resource bookkeeping.

    Args:
        problem: The static cluster description (services, machines,
            affinity from traffic metrics, constraints).
        placement: Initial container placement; defaults to the problem's
            recorded current assignment or an empty cluster.
    """

    def __init__(self, problem: RASAProblem, placement: np.ndarray | None = None) -> None:
        self.problem = problem
        if placement is None:
            if problem.current_assignment is not None:
                placement = problem.current_assignment
            else:
                placement = np.zeros(
                    (problem.num_services, problem.num_machines), dtype=np.int64
                )
        self._x = np.asarray(placement, dtype=np.int64).copy()
        self._clock = 0.0
        self.unschedulable_until: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Simulated time in seconds since state creation."""
        return self._clock

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock."""
        if seconds < 0:
            raise ClusterStateError("cannot advance time backwards")
        self._clock += seconds

    # ------------------------------------------------------------------
    # Container operations
    # ------------------------------------------------------------------
    def delete_container(self, service: str, machine: str) -> None:
        """Remove one container; raises if none exists there."""
        s = self.problem.service_index(service)
        m = self.problem.machine_index(machine)
        if self._x[s, m] <= 0:
            raise ClusterStateError(
                f"no container of {service!r} on {machine!r} to delete"
            )
        self._x[s, m] -= 1

    def create_container(self, service: str, machine: str) -> None:
        """Add one container; raises when capacity or constraints forbid it."""
        s = self.problem.service_index(service)
        m = self.problem.machine_index(machine)
        if not self.problem.schedulable[s, m]:
            raise ClusterStateError(f"{machine!r} is not schedulable for {service!r}")
        request = self.problem.requests_matrix[s]
        if (self.free_resources()[m] < request - 1e-9).any():
            raise ClusterStateError(
                f"insufficient free resources on {machine!r} for {service!r}"
            )
        for rule_index, rule in enumerate(self.problem.anti_affinity):
            if service in rule.services:
                members = [self.problem.service_index(name) for name in rule.services]
                if self._x[members, m].sum() + 1 > rule.limit:
                    raise ClusterStateError(
                        f"anti-affinity rule {rule_index} blocks {service!r} on {machine!r}"
                    )
        self._x[s, m] += 1

    def mark_unschedulable(self, machine: str, until: float) -> None:
        """Tag a machine as off-limits for optimization until a deadline
        (the paper's 3-day churn guard after a rollback)."""
        self.unschedulable_until[machine] = max(
            self.unschedulable_until.get(machine, 0.0), until
        )

    def is_schedulable_machine(self, machine: str) -> bool:
        """Whether the optimizer may currently target the machine."""
        return self.unschedulable_until.get(machine, 0.0) <= self._clock

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def placement(self) -> np.ndarray:
        """Copy of the current placement matrix."""
        return self._x.copy()

    def assignment(self) -> Assignment:
        """Current placement as an :class:`~repro.core.solution.Assignment`."""
        return Assignment(self.problem, self._x)

    def snapshot(self) -> ClusterSnapshot:
        """The Data Collector's output for the current instant."""
        return ClusterSnapshot(
            problem=self.problem,
            assignment=self.assignment(),
            timestamp=self._clock,
        )

    def free_resources(self) -> np.ndarray:
        """Free capacity per machine, shape ``(M, R)``."""
        used = self._x.T.astype(float) @ self.problem.requests_matrix
        return self.problem.capacities_matrix - used

    def utilization(self) -> np.ndarray:
        """Per-machine, per-resource utilization in ``[0, 1]`` (NaN when
        capacity is zero)."""
        capacity = self.problem.capacities_matrix
        used = self._x.T.astype(float) @ self.problem.requests_matrix
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(capacity > 0, used / capacity, np.nan)

    def utilization_imbalance(self) -> float:
        """Standard deviation of mean machine utilization — the skew metric
        the rollback mechanism watches."""
        util = np.nan_to_num(self.utilization(), nan=0.0).mean(axis=1)
        return float(util.std())

    def restore(self, placement: np.ndarray) -> None:
        """Overwrite the placement (rollback support)."""
        placement = np.asarray(placement, dtype=np.int64)
        if placement.shape != self._x.shape:
            raise ClusterStateError(
                f"placement shape {placement.shape} != {self._x.shape}"
            )
        self._x = placement.copy()

    def named_placement(self) -> dict[str, dict[str, int]]:
        """The placement keyed by service and machine *names*.

        The checkpoint serialization: row/column indices are an artifact
        of one process's problem object, but names survive a restart and
        make divergence (a service or machine that no longer exists)
        detectable instead of silently mis-assigned.  Zero counts are
        omitted.
        """
        out: dict[str, dict[str, int]] = {}
        services = self.problem.service_names()
        machines = self.problem.machine_names()
        for s, svc in enumerate(services):
            row = {
                machines[m]: int(count)
                for m, count in enumerate(self._x[s])
                if count
            }
            if row:
                out[svc] = row
        return out

    def restore_named(self, mapping: dict[str, dict[str, int]]) -> None:
        """Overwrite the placement from a :meth:`named_placement` capture.

        The full matrix is built before any assignment, so a divergent
        capture never leaves the state partially mutated.

        Raises:
            ClusterStateError: When the capture references a service or
                machine this cluster does not know — the world changed
                between checkpoint and resume.
        """
        services = {name: i for i, name in enumerate(self.problem.service_names())}
        machines = {name: j for j, name in enumerate(self.problem.machine_names())}
        x = np.zeros_like(self._x)
        for svc, row in mapping.items():
            s = services.get(svc)
            if s is None:
                raise ClusterStateError(
                    f"checkpoint places unknown service {svc!r} "
                    f"(torn down since the checkpoint?)"
                )
            for mach, count in row.items():
                m = machines.get(mach)
                if m is None:
                    raise ClusterStateError(
                        f"checkpoint places {svc!r} on unknown machine "
                        f"{mach!r} (reclaimed since the checkpoint?)"
                    )
                x[s, m] = int(count)
        self._x = x

    def rebind(self, problem: RASAProblem, placement: np.ndarray | None = None) -> None:
        """Swap in a new problem definition *in place*, preserving identity.

        Structural churn (service deploys, machine reclaims, traffic shifts)
        re-materializes the :class:`RASAProblem`, but the CronJob controller
        and the replay cursor both hold references to *this* state object —
        rebinding keeps those references valid instead of forcing every
        holder to chase a replacement object.  The simulated clock and the
        churn-guard tags survive; tags for machines that left the cluster
        are dropped.

        Args:
            problem: The new cluster description.
            placement: Placement matrix matching the new problem's shape;
                defaults to ``problem.current_assignment`` (or an empty
                cluster when the problem carries none).

        Raises:
            ClusterStateError: When the placement shape does not match.
        """
        if placement is None:
            placement = problem.current_assignment
        if placement is None:
            placement = np.zeros(
                (problem.num_services, problem.num_machines), dtype=np.int64
            )
        placement = np.asarray(placement, dtype=np.int64)
        expected = (problem.num_services, problem.num_machines)
        if placement.shape != expected:
            raise ClusterStateError(
                f"placement shape {placement.shape} != {expected}"
            )
        self.problem = problem
        self._x = placement.copy()
        machines = set(problem.machine_names())
        self.unschedulable_until = {
            name: until
            for name, until in self.unschedulable_until.items()
            if name in machines
        }
