"""Versioned wire schemas: one ``schema_version`` key for every payload.

Every serializable artifact the system hands across a process boundary —
:class:`~repro.cluster.cronjob.CycleReport`,
:class:`~repro.migration.plan.MigrationPlan`,
:class:`~repro.migration.executor.ExecutionTrace`,
:class:`~repro.faults.plan.FaultPlan`, and the
:meth:`~repro.core.rasa.RASAResult.summary_dict` service summary — tags its
``to_dict`` payload with the shared :data:`SCHEMA_VERSION` and validates it
in ``from_dict``.  The multi-tenant optimizer service
(:mod:`repro.service`) speaks *only* these tagged payloads, so a client
from a different build fails loudly on a version skew instead of silently
misreading fields.

Versioning policy: additive, defaulted fields do not bump the version
(``from_dict`` implementations read unknown-key-tolerant with defaults);
renames, removals, or semantic changes do.  Payloads written before this
key existed carry no ``schema_version`` and are accepted as version 1 —
the key was introduced without changing any field.
"""

from __future__ import annotations

from repro.exceptions import ProblemValidationError

#: The current wire-schema version, shared by every tagged payload type.
SCHEMA_VERSION = 1

#: Payload key carrying the version tag.
SCHEMA_KEY = "schema_version"


def tag_schema(payload: dict) -> dict:
    """Return ``payload`` with the current :data:`SCHEMA_VERSION` tag added.

    Mutates and returns the same dict (payloads are freshly built by the
    ``to_dict`` caller).  The tag is inserted first so serialized JSON
    leads with the version.
    """
    tagged = {SCHEMA_KEY: SCHEMA_VERSION}
    tagged.update(payload)
    return tagged


def check_schema(payload: dict, kind: str) -> dict:
    """Validate a payload's ``schema_version`` tag; returns the payload.

    A missing tag is accepted as version 1 (artifacts written before the
    tag existed); a present tag must equal :data:`SCHEMA_VERSION`.

    Args:
        payload: The dict handed to a ``from_dict``.
        kind: Human-readable payload type for the error message
            (e.g. ``"CycleReport"``).

    Raises:
        ProblemValidationError: When the tag is present but not the
            supported version, or is not an integer.
    """
    version = payload.get(SCHEMA_KEY, SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProblemValidationError(
            f"{kind} payload has a non-integer {SCHEMA_KEY}: {version!r}"
        )
    if version != SCHEMA_VERSION:
        raise ProblemValidationError(
            f"{kind} payload has {SCHEMA_KEY}={version}, but this build "
            f"speaks version {SCHEMA_VERSION}"
        )
    return payload


def strip_schema(payload: dict) -> dict:
    """A copy of ``payload`` without the version tag.

    For ``from_dict`` implementations that feed the payload to a strict
    constructor (e.g. :class:`~repro.faults.plan.FaultPlan`, which rejects
    unknown keys so a typoed rate cannot silently disable chaos).
    """
    return {k: v for k, v in payload.items() if k != SCHEMA_KEY}
