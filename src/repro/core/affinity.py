"""Affinity graphs: the weighted service-to-service traffic model.

The paper models affinity as a weighted undirected graph whose vertices are
services and whose edge weights approximate the traffic volume between two
services (Section II-B).  This module provides the graph container plus the
per-service *total affinity* ``T(s)`` used by master-affinity partitioning.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import ProblemValidationError


def _canonical(u: str, v: str) -> tuple[str, str]:
    """Return the unordered edge key for services ``u`` and ``v``."""
    return (u, v) if u <= v else (v, u)


class AffinityGraph:
    """Weighted undirected graph of service affinities.

    Edge keys are canonicalized so ``(a, b)`` and ``(b, a)`` refer to the
    same edge.  Self-loops are rejected: affinity is defined between
    *distinct* services (traffic within one service is already local).

    Args:
        weights: Mapping from service-name pairs to positive edge weights.
    """

    def __init__(self, weights: Mapping[tuple[str, str], float] | None = None) -> None:
        self._weights: dict[tuple[str, str], float] = {}
        self._adjacency: dict[str, dict[str, float]] = {}
        if weights:
            for (u, v), w in weights.items():
                self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: str, v: str, weight: float) -> None:
        """Add (or accumulate onto) the edge between ``u`` and ``v``.

        Raises:
            ProblemValidationError: On self-loops or non-positive weights.
        """
        if u == v:
            raise ProblemValidationError(f"affinity self-loop on service {u!r}")
        if weight <= 0:
            raise ProblemValidationError(
                f"affinity weight for ({u!r}, {v!r}) must be positive, got {weight}"
            )
        key = _canonical(u, v)
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)
        self._adjacency.setdefault(u, {})[v] = self._weights[key]
        self._adjacency.setdefault(v, {})[u] = self._weights[key]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of affinity edges."""
        return len(self._weights)

    @property
    def total_affinity(self) -> float:
        """Sum of all edge weights (the paper normalizes this to 1.0)."""
        return sum(self._weights.values())

    def weight(self, u: str, v: str) -> float:
        """Weight of the edge between ``u`` and ``v``; 0.0 if absent."""
        return self._weights.get(_canonical(u, v), 0.0)

    def edges(self) -> Iterator[tuple[str, str]]:
        """Iterate over canonical edge keys."""
        return iter(self._weights)

    def items(self) -> Iterator[tuple[tuple[str, str], float]]:
        """Iterate over ``((u, v), weight)`` pairs."""
        return iter(self._weights.items())

    def vertices(self) -> set[str]:
        """Services that appear in at least one affinity edge."""
        return set(self._adjacency)

    def neighbors(self, service: str) -> dict[str, float]:
        """Neighbors of ``service`` with the connecting edge weights."""
        return dict(self._adjacency.get(service, {}))

    def degree(self, service: str) -> int:
        """Number of affinity edges incident to ``service``."""
        return len(self._adjacency.get(service, {}))

    def total_affinity_of(self, service: str) -> float:
        """Per-service total affinity ``T(s) = sum of incident weights``.

        This is the skew statistic behind master-affinity partitioning
        (paper Section IV-B2 and Assumption 4.1).
        """
        return sum(self._adjacency.get(service, {}).values())

    def services_by_total_affinity(self) -> list[tuple[str, float]]:
        """Services sorted by decreasing ``T(s)`` (ties broken by name)."""
        totals = [(s, self.total_affinity_of(s)) for s in self._adjacency]
        totals.sort(key=lambda item: (-item[1], item[0]))
        return totals

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "AffinityGraph":
        """Return a copy whose total affinity is scaled to 1.0.

        Returns ``self``-equivalent empty graph unchanged if there are no
        edges.
        """
        total = self.total_affinity
        if total == 0:
            return AffinityGraph()
        return AffinityGraph({edge: w / total for edge, w in self._weights.items()})

    def induced_subgraph(self, keep: Iterable[str]) -> "AffinityGraph":
        """Subgraph containing only edges with *both* endpoints in ``keep``."""
        keep_set = set(keep)
        return AffinityGraph(
            {
                (u, v): w
                for (u, v), w in self._weights.items()
                if u in keep_set and v in keep_set
            }
        )

    def cut_weight(self, part_a: Iterable[str], part_b: Iterable[str]) -> float:
        """Total weight of edges crossing between two disjoint service sets."""
        set_a, set_b = set(part_a), set(part_b)
        crossing = 0.0
        for (u, v), w in self._weights.items():
            if (u in set_a and v in set_b) or (u in set_b and v in set_a):
                crossing += w
        return crossing

    def partition_loss(self, parts: Iterable[Iterable[str]]) -> float:
        """Affinity weight lost by a partition (edges across different parts).

        Services absent from every part are treated as their own singleton
        part, so edges touching them count as lost.
        """
        owner: dict[str, int] = {}
        for index, part in enumerate(parts):
            for service in part:
                owner[service] = index
        loss = 0.0
        for (u, v), w in self._weights.items():
            if owner.get(u, -1) != owner.get(v, -2):
                loss += w
        return loss

    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` with ``weight`` attributes."""
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        for (u, v), w in self._weights.items():
            graph.add_edge(u, v, weight=w)
        return graph

    def connected_components(self) -> list[set[str]]:
        """Connected components over services that have affinity edges."""
        return [set(c) for c in nx.connected_components(self.to_networkx())]

    def __contains__(self, edge: tuple[str, str]) -> bool:
        return _canonical(*edge) in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AffinityGraph(edges={self.num_edges}, vertices={len(self._adjacency)}, "
            f"total={self.total_affinity:.4g})"
        )
