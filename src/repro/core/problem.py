"""Problem model for Resource Allocation with Service Affinity (RASA).

This module defines the cluster description consumed by every algorithm in
the package: services with container demands and per-resource requests,
machines with capacities, the affinity graph between services, anti-affinity
sets, and the schedulability matrix ``b`` (paper Section II, Table I).

The canonical object is :class:`RASAProblem`.  It is immutable after
construction and validated eagerly so downstream solvers can assume a
well-formed instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.affinity import AffinityGraph
from repro.exceptions import ProblemValidationError

#: Resource types used by default when a caller does not specify any.
DEFAULT_RESOURCES: tuple[str, ...] = ("cpu", "memory")


@dataclass(frozen=True)
class Service:
    """A microservice that must place ``demand`` homogeneous containers.

    Attributes:
        name: Unique service identifier within the cluster.
        demand: Number of containers (``d_s`` in the paper) required to meet
            the service's SLA.  Must be a positive integer.
        requests: Mapping from resource type to the amount requested by *one*
            container of this service (``R^S_{r,s}``).
        priority: Optional network-performance priority used to scale the
            service's affinity weights (paper Section II-B).  1.0 is neutral.
    """

    name: str
    demand: int
    requests: Mapping[str, float]
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ProblemValidationError(
                f"service {self.name!r}: demand must be positive, got {self.demand}"
            )
        if self.priority <= 0:
            raise ProblemValidationError(
                f"service {self.name!r}: priority must be positive, got {self.priority}"
            )
        for resource, amount in self.requests.items():
            if amount < 0:
                raise ProblemValidationError(
                    f"service {self.name!r}: negative request for {resource!r}"
                )


@dataclass(frozen=True)
class Machine:
    """A physical machine with per-resource capacities (``R^M_{r,m}``).

    Attributes:
        name: Unique machine identifier within the cluster.
        capacity: Mapping from resource type to total capacity.
        spec: Optional machine specification label.  Machines sharing a spec
            are interchangeable during subproblem machine assignment
            (paper Section IV-B5).
    """

    name: str
    capacity: Mapping[str, float]
    spec: str = "default"

    def __post_init__(self) -> None:
        for resource, amount in self.capacity.items():
            if amount < 0:
                raise ProblemValidationError(
                    f"machine {self.name!r}: negative capacity for {resource!r}"
                )


@dataclass(frozen=True)
class AntiAffinityRule:
    """Anti-affinity constraint: at most ``limit`` containers from
    ``services`` may share a machine (paper Eq. 5).

    A single-service rule expresses service-to-machine anti-affinity (spread).
    """

    services: frozenset[str]
    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ProblemValidationError(
                f"anti-affinity limit must be non-negative, got {self.limit}"
            )
        if not self.services:
            raise ProblemValidationError("anti-affinity rule must name at least one service")


class RASAProblem:
    """A full RASA instance: services, machines, affinity, and constraints.

    Args:
        services: Cluster services.  Order defines service indices.
        machines: Cluster machines.  Order defines machine indices.
        affinity: Edge weights ``w_{s,s'}`` keyed by unordered service-name
            pairs, or an :class:`~repro.core.affinity.AffinityGraph`.
        anti_affinity: Anti-affinity rules (paper Eq. 5).
        schedulable: Optional boolean ``N x M`` matrix ``b``; ``True`` means
            the machine may host containers of the service (paper Eq. 6).
            Defaults to all-schedulable.
        resource_types: Resource types to enforce.  Defaults to the union of
            types appearing in services and machines.
        current_assignment: Optional existing placement ``x0`` (``N x M``
            integer matrix) describing where containers run today.  Used by
            the migration-path algorithm and the ORIGINAL baseline.

    Raises:
        ProblemValidationError: If any cross-references or shapes are invalid.
    """

    def __init__(
        self,
        services: Sequence[Service],
        machines: Sequence[Machine],
        affinity: AffinityGraph | Mapping[tuple[str, str], float] | None = None,
        anti_affinity: Iterable[AntiAffinityRule] = (),
        schedulable: np.ndarray | None = None,
        resource_types: Sequence[str] | None = None,
        current_assignment: np.ndarray | None = None,
    ) -> None:
        self.services: tuple[Service, ...] = tuple(services)
        self.machines: tuple[Machine, ...] = tuple(machines)
        if not self.services:
            raise ProblemValidationError("problem must contain at least one service")
        if not self.machines:
            raise ProblemValidationError("problem must contain at least one machine")

        self._service_index = {s.name: i for i, s in enumerate(self.services)}
        self._machine_index = {m.name: i for i, m in enumerate(self.machines)}
        if len(self._service_index) != len(self.services):
            raise ProblemValidationError("duplicate service names")
        if len(self._machine_index) != len(self.machines):
            raise ProblemValidationError("duplicate machine names")

        if resource_types is None:
            seen: dict[str, None] = {}
            for svc in self.services:
                for r in svc.requests:
                    seen.setdefault(r)
            for mach in self.machines:
                for r in mach.capacity:
                    seen.setdefault(r)
            resource_types = tuple(seen) or DEFAULT_RESOURCES
        self.resource_types: tuple[str, ...] = tuple(resource_types)

        if isinstance(affinity, AffinityGraph):
            self.affinity = affinity
        else:
            self.affinity = AffinityGraph(affinity or {})
        for u, v in self.affinity.edges():
            if u not in self._service_index or v not in self._service_index:
                raise ProblemValidationError(
                    f"affinity edge ({u!r}, {v!r}) references unknown service"
                )

        self.anti_affinity: tuple[AntiAffinityRule, ...] = tuple(anti_affinity)
        for rule in self.anti_affinity:
            for name in rule.services:
                if name not in self._service_index:
                    raise ProblemValidationError(
                        f"anti-affinity rule references unknown service {name!r}"
                    )

        n, m = len(self.services), len(self.machines)
        if schedulable is None:
            schedulable = np.ones((n, m), dtype=bool)
        else:
            schedulable = np.asarray(schedulable, dtype=bool)
            if schedulable.shape != (n, m):
                raise ProblemValidationError(
                    f"schedulable matrix shape {schedulable.shape} != ({n}, {m})"
                )
        self.schedulable: np.ndarray = schedulable
        self.schedulable.setflags(write=False)

        if current_assignment is not None:
            current_assignment = np.asarray(current_assignment, dtype=np.int64)
            if current_assignment.shape != (n, m):
                raise ProblemValidationError(
                    f"current assignment shape {current_assignment.shape} != ({n}, {m})"
                )
            if (current_assignment < 0).any():
                raise ProblemValidationError("current assignment has negative counts")
            current_assignment.setflags(write=False)
        self.current_assignment: np.ndarray | None = current_assignment

        # Dense numeric views used by solvers.  Built once, read many times.
        self._requests = np.array(
            [[svc.requests.get(r, 0.0) for r in self.resource_types] for svc in self.services],
            dtype=float,
        )
        self._capacities = np.array(
            [[mach.capacity.get(r, 0.0) for r in self.resource_types] for mach in self.machines],
            dtype=float,
        )
        self._demands = np.array([svc.demand for svc in self.services], dtype=np.int64)
        self._requests.setflags(write=False)
        self._capacities.setflags(write=False)
        self._demands.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_services(self) -> int:
        """Number of services ``N``."""
        return len(self.services)

    @property
    def num_machines(self) -> int:
        """Number of machines ``M``."""
        return len(self.machines)

    @property
    def num_containers(self) -> int:
        """Total containers the cluster must host (sum of demands)."""
        return int(self._demands.sum())

    @property
    def demands(self) -> np.ndarray:
        """Vector of container demands ``d_s``, shape ``(N,)``."""
        return self._demands

    @property
    def requests_matrix(self) -> np.ndarray:
        """Per-container resource requests, shape ``(N, len(resource_types))``."""
        return self._requests

    @property
    def capacities_matrix(self) -> np.ndarray:
        """Machine capacities, shape ``(M, len(resource_types))``."""
        return self._capacities

    def service_index(self, name: str) -> int:
        """Return the index of the named service."""
        return self._service_index[name]

    def machine_index(self, name: str) -> int:
        """Return the index of the named machine."""
        return self._machine_index[name]

    def service_names(self) -> list[str]:
        """Names of all services, in index order."""
        return [s.name for s in self.services]

    def machine_names(self) -> list[str]:
        """Names of all machines, in index order."""
        return [m.name for m in self.machines]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def weighted_affinity(self) -> AffinityGraph:
        """Affinity graph with edge weights scaled by service priorities.

        The paper allows cluster operators to up/down-weight traffic by a
        per-service network-performance priority; an edge's effective weight
        is scaled by the geometric mean of its endpoints' priorities.
        """
        scaled: dict[tuple[str, str], float] = {}
        for (u, v), w in self.affinity.items():
            pu = self.services[self._service_index[u]].priority
            pv = self.services[self._service_index[v]].priority
            scaled[(u, v)] = w * float(np.sqrt(pu * pv))
        return AffinityGraph(scaled)

    def subproblem(
        self,
        service_names: Sequence[str],
        machine_names: Sequence[str],
    ) -> "RASAProblem":
        """Extract the sub-instance induced by a service and machine subset.

        The affinity graph is restricted to edges with both endpoints inside
        the subset; anti-affinity rules are restricted to their intersection
        with the subset (rules that lose all members are dropped); the
        schedulability matrix and current assignment are sliced accordingly.
        """
        svc_idx = [self._service_index[s] for s in service_names]
        mach_idx = [self._machine_index[m] for m in machine_names]
        keep = set(service_names)

        sub_affinity = self.affinity.induced_subgraph(keep)
        sub_rules = []
        for rule in self.anti_affinity:
            members = rule.services & keep
            if members:
                sub_rules.append(AntiAffinityRule(services=frozenset(members), limit=rule.limit))

        sub_schedulable = self.schedulable[np.ix_(svc_idx, mach_idx)]
        sub_current = None
        if self.current_assignment is not None:
            sub_current = self.current_assignment[np.ix_(svc_idx, mach_idx)]

        return RASAProblem(
            services=[self.services[i] for i in svc_idx],
            machines=[self.machines[i] for i in mach_idx],
            affinity=sub_affinity,
            anti_affinity=sub_rules,
            schedulable=sub_schedulable,
            resource_types=self.resource_types,
            current_assignment=sub_current,
        )

    def total_request(self, service_names: Sequence[str] | None = None) -> np.ndarray:
        """Total resources requested by all containers of the given services.

        Args:
            service_names: Subset of services; defaults to every service.

        Returns:
            Vector over ``resource_types``.
        """
        if service_names is None:
            idx = np.arange(self.num_services)
        else:
            idx = np.array([self._service_index[s] for s in service_names], dtype=int)
        if idx.size == 0:
            return np.zeros(len(self.resource_types))
        return (self._requests[idx] * self._demands[idx, None]).sum(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RASAProblem(services={self.num_services}, machines={self.num_machines}, "
            f"containers={self.num_containers}, edges={self.affinity.num_edges})"
        )
