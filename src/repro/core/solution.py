"""Solutions to RASA instances: assignment matrices and their evaluation.

An :class:`Assignment` wraps the integer decision matrix ``x`` (paper
Section II-C) where ``x[s, m]`` is the number of service ``s`` containers on
machine ``m``.  The module implements the paper's objective — overall gained
affinity (Definition 1) — and feasibility checking against every constraint
family (Eq. 3–9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import RASAProblem
from repro.exceptions import ProblemValidationError

#: Numeric slack for floating-point resource comparisons.
RESOURCE_TOLERANCE = 1e-9


@dataclass
class FeasibilityReport:
    """Outcome of checking an assignment against a problem's constraints.

    Attributes:
        sla_violations: Services whose placed container count differs from
            the demand ``d_s`` (Eq. 3).
        resource_violations: ``(machine, resource, used, capacity)`` tuples
            for machines whose capacity is exceeded (Eq. 4).
        anti_affinity_violations: ``(machine, rule_index, count, limit)``
            tuples (Eq. 5).
        schedulable_violations: ``(service, machine)`` pairs that host
            containers despite ``b[s, m] = 0`` (Eq. 6).
    """

    sla_violations: list[tuple[str, int, int]] = field(default_factory=list)
    resource_violations: list[tuple[str, str, float, float]] = field(default_factory=list)
    anti_affinity_violations: list[tuple[str, int, int, int]] = field(default_factory=list)
    schedulable_violations: list[tuple[str, str]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """True if no constraint family is violated."""
        return not (
            self.sla_violations
            or self.resource_violations
            or self.anti_affinity_violations
            or self.schedulable_violations
        )

    def summary(self) -> str:
        """Human-readable one-line summary."""
        if self.feasible:
            return "feasible"
        return (
            f"infeasible: sla={len(self.sla_violations)} "
            f"resource={len(self.resource_violations)} "
            f"anti_affinity={len(self.anti_affinity_violations)} "
            f"schedulable={len(self.schedulable_violations)}"
        )


class Assignment:
    """An integer container-to-machine placement for a :class:`RASAProblem`.

    Args:
        problem: The instance this assignment belongs to.
        x: Integer matrix of shape ``(N, M)``; ``x[s, m]`` counts service
            ``s`` containers on machine ``m``.  Copied and frozen.
    """

    def __init__(self, problem: RASAProblem, x: np.ndarray) -> None:
        x = np.asarray(x)
        expected = (problem.num_services, problem.num_machines)
        if x.shape != expected:
            raise ProblemValidationError(f"assignment shape {x.shape} != {expected}")
        if not np.issubdtype(x.dtype, np.integer):
            rounded = np.rint(x)
            if not np.allclose(x, rounded, atol=1e-6):
                raise ProblemValidationError("assignment matrix must be integral")
            x = rounded
        x = x.astype(np.int64, copy=True)
        if (x < 0).any():
            raise ProblemValidationError("assignment matrix has negative entries")
        x.setflags(write=False)
        self.problem = problem
        self.x = x

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, problem: RASAProblem) -> "Assignment":
        """All-zero assignment (nothing placed)."""
        return cls(problem, np.zeros((problem.num_services, problem.num_machines), dtype=np.int64))

    @classmethod
    def from_current(cls, problem: RASAProblem) -> "Assignment":
        """Wrap the problem's recorded current placement.

        Raises:
            ProblemValidationError: If the problem has no current assignment.
        """
        if problem.current_assignment is None:
            raise ProblemValidationError("problem has no current assignment")
        return cls(problem, problem.current_assignment)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def gained_affinity(self, normalized: bool = False) -> float:
        """Overall gained affinity (paper Definition 1).

        For every affinity edge ``(s, s')`` and machine ``m``::

            a = w(s, s') * min(x[s, m] / d_s, x[s', m] / d_s')

        Args:
            normalized: If True, divide by the graph's total affinity so the
                result lies in ``[0, 1]`` (matching the paper's figures).

        Returns:
            The summed gained affinity; 0.0 for an empty affinity graph.
        """
        problem = self.problem
        total = 0.0
        demands = problem.demands.astype(float)
        for (u, v), w in problem.affinity.items():
            s = problem.service_index(u)
            t = problem.service_index(v)
            ratios = np.minimum(self.x[s] / demands[s], self.x[t] / demands[t])
            total += w * float(ratios.sum())
        if normalized:
            graph_total = problem.affinity.total_affinity
            if graph_total == 0:
                return 0.0
            return total / graph_total
        return total

    def gained_affinity_of_pair(self, u: str, v: str) -> float:
        """Gained affinity of one service pair, summed over all machines."""
        problem = self.problem
        w = problem.affinity.weight(u, v)
        if w == 0.0:
            return 0.0
        s = problem.service_index(u)
        t = problem.service_index(v)
        ds = float(problem.demands[s])
        dt = float(problem.demands[t])
        ratios = np.minimum(self.x[s] / ds, self.x[t] / dt)
        return w * float(ratios.sum())

    def localization_ratio(self, u: str, v: str) -> float:
        """Fraction of traffic between ``u`` and ``v`` that is machine-local.

        This is gained affinity of the pair divided by its weight: the
        quantity plotted in the paper's production figures.
        """
        w = self.problem.affinity.weight(u, v)
        if w == 0.0:
            return 0.0
        return self.gained_affinity_of_pair(u, v) / w

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def check_feasibility(self, check_sla: bool = True) -> FeasibilityReport:
        """Validate the assignment against every constraint family.

        Args:
            check_sla: If False, skip the exact-demand check (Eq. 3) — useful
                for partial placements mid-migration.
        """
        problem = self.problem
        report = FeasibilityReport()

        if check_sla:
            placed = self.x.sum(axis=1)
            for i, svc in enumerate(problem.services):
                if placed[i] != svc.demand:
                    report.sla_violations.append((svc.name, int(placed[i]), svc.demand))

        usage = self.x.T.astype(float) @ problem.requests_matrix  # (M, R)
        capacity = problem.capacities_matrix
        over = usage > capacity + RESOURCE_TOLERANCE
        for m, r in zip(*np.nonzero(over)):
            report.resource_violations.append(
                (
                    problem.machines[m].name,
                    problem.resource_types[r],
                    float(usage[m, r]),
                    float(capacity[m, r]),
                )
            )

        for rule_index, rule in enumerate(problem.anti_affinity):
            idx = [problem.service_index(s) for s in rule.services]
            counts = self.x[idx].sum(axis=0)
            for m in np.nonzero(counts > rule.limit)[0]:
                report.anti_affinity_violations.append(
                    (problem.machines[m].name, rule_index, int(counts[m]), rule.limit)
                )

        bad = (self.x > 0) & ~problem.schedulable
        for s, m in zip(*np.nonzero(bad)):
            report.schedulable_violations.append(
                (problem.services[s].name, problem.machines[m].name)
            )

        return report

    @property
    def is_feasible(self) -> bool:
        """Shorthand for ``check_feasibility().feasible``."""
        return self.check_feasibility().feasible

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def machine_usage(self) -> np.ndarray:
        """Resource usage per machine, shape ``(M, len(resource_types))``."""
        return self.x.T.astype(float) @ self.problem.requests_matrix

    def machine_utilization(self) -> np.ndarray:
        """Usage / capacity per machine and resource; NaN where capacity is 0."""
        capacity = self.problem.capacities_matrix
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(capacity > 0, self.machine_usage() / capacity, np.nan)

    def moved_containers(self, other: "Assignment") -> int:
        """Containers that must move to transform ``other`` into ``self``.

        Counted as the positive part of the per-cell difference — each unit
        of increase on some machine corresponds to one created (moved)
        container.
        """
        diff = self.x.astype(np.int64) - other.x.astype(np.int64)
        return int(np.clip(diff, 0, None).sum())

    def merge_subassignment(
        self,
        sub: "Assignment",
        service_names: list[str],
        machine_names: list[str],
    ) -> "Assignment":
        """Overlay a subproblem solution onto this assignment.

        Rows for the subproblem services are *replaced* (not added) in the
        columns of the subproblem machines.

        Returns:
            A new :class:`Assignment` on the same problem.
        """
        problem = self.problem
        x = self.x.copy()
        svc_idx = [problem.service_index(s) for s in service_names]
        mach_idx = [problem.machine_index(m) for m in machine_names]
        x[np.ix_(svc_idx, mach_idx)] = sub.x
        return Assignment(problem, x)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self.problem is other.problem and np.array_equal(self.x, other.x)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Assignment(placed={int(self.x.sum())}, "
            f"gained={self.gained_affinity(normalized=True):.4f})"
        )
