"""Configuration for the RASA scheduler facade."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RASAConfig:
    """Tunables of the three-phase RASA pipeline.

    Attributes:
        master_ratio: Override for the master-affinity ratio ``alpha``;
            None selects the paper's ``45 * ln^0.66(N) / N``.
        max_subproblem_services: Size threshold that triggers balanced
            partitioning of a crucial service set.
        partition_samples: Cap on the BFS partition samples per split.
        backend: MILP backend (``"highs"`` or ``"bnb"``).
        min_subproblem_budget: Time floor (seconds) granted to every
            subproblem even when the overall budget is tight.
        repair_unplaced: Whether to greedily place containers that solvers
            failed to deploy (stands in for the cluster's default scheduler
            picking up failed deployments, paper IV-B5).
        local_search_seconds: Budget for an optional local-search polish of
            the merged placement (0 disables it).  An extension beyond the
            paper's pipeline; see DESIGN.md ablations.
        seed: Seed for partitioning randomness.
    """

    master_ratio: float | None = None
    max_subproblem_services: int = 48
    partition_samples: int = 32
    backend: str = "highs"
    min_subproblem_budget: float = 0.5
    repair_unplaced: bool = True
    local_search_seconds: float = 0.0
    seed: int = 0
