"""Configuration for the RASA scheduler facade."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RASAConfig:
    """Tunables of the three-phase RASA pipeline.

    Attributes:
        master_ratio: Override for the master-affinity ratio ``alpha``;
            None selects the paper's ``45 * ln^0.66(N) / N``.
        max_subproblem_services: Size threshold that triggers balanced
            partitioning of a crucial service set.
        partition_samples: Cap on the BFS partition samples per split.
        backend: MILP backend (``"highs"`` or ``"bnb"``).
        min_subproblem_budget: Time floor (seconds) granted to every
            subproblem even when the overall budget is tight.
        repair_unplaced: Whether to greedily place containers that solvers
            failed to deploy (stands in for the cluster's default scheduler
            picking up failed deployments, paper IV-B5).
        local_search_seconds: Budget for an optional local-search polish of
            the merged placement (0 disables it).  An extension beyond the
            paper's pipeline; see DESIGN.md ablations.
        seed: Seed for partitioning randomness.
        workers: Worker processes for the solve phase.  1 (the default)
            keeps the fully sequential pipeline; ``N > 1`` dispatches
            independent subproblems to a process pool (see
            :mod:`repro.core.parallel`) while preserving the deterministic
            affinity-descending merge order.
        parallel: Tri-state parallelism switch: None (auto) parallelizes
            iff ``workers > 1``; True forces parallel mode, defaulting
            ``workers`` to the CPU count when left at 1; False forces
            sequential mode regardless of ``workers``.
        worker_timeout_factor: Multiplier on a task's solver budget used
            for its wall-clock deadline in parallel mode (hung-worker
            backstop; see :class:`~repro.core.parallel.ParallelDispatcher`).
        worker_timeout_margin: Constant slack (seconds) added to every
            parallel task deadline.
    """

    master_ratio: float | None = None
    max_subproblem_services: int = 48
    partition_samples: int = 32
    backend: str = "highs"
    min_subproblem_budget: float = 0.5
    repair_unplaced: bool = True
    local_search_seconds: float = 0.0
    seed: int = 0
    workers: int = 1
    parallel: bool | None = None
    worker_timeout_factor: float = 2.0
    worker_timeout_margin: float = 5.0
