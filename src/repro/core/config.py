"""Configuration objects: scheduler tunables and control-plane policies.

:class:`RASAConfig` parameterizes the three-phase optimization pipeline;
:class:`RetryPolicy` and :class:`DegradationPolicy` parameterize the
fault-tolerant control plane (per-command retry with exponential backoff,
and the cycle-level degradation ladder).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProblemValidationError


@dataclass
class RASAConfig:
    """Tunables of the three-phase RASA pipeline.

    Attributes:
        master_ratio: Override for the master-affinity ratio ``alpha``;
            None selects the paper's ``45 * ln^0.66(N) / N``.
        max_subproblem_services: Size threshold that triggers balanced
            partitioning of a crucial service set.
        partition_samples: Cap on the BFS partition samples per split.
        backend: MILP backend (``"highs"`` or ``"bnb"``).
        min_subproblem_budget: Time floor (seconds) granted to every
            subproblem even when the overall budget is tight.
        repair_unplaced: Whether to greedily place containers that solvers
            failed to deploy (stands in for the cluster's default scheduler
            picking up failed deployments, paper IV-B5).
        local_search_seconds: Budget for an optional local-search polish of
            the merged placement (0 disables it).  An extension beyond the
            paper's pipeline; see DESIGN.md ablations.
        seed: Seed for partitioning randomness.
        workers: Worker processes for the solve phase.  1 (the default)
            keeps the fully sequential pipeline; ``N > 1`` dispatches
            independent subproblems to a process pool (see
            :mod:`repro.core.parallel`) while preserving the deterministic
            affinity-descending merge order.
        parallel: Tri-state parallelism switch: None (auto) parallelizes
            iff ``workers > 1``; True forces parallel mode, defaulting
            ``workers`` to the CPU count when left at 1; False forces
            sequential mode regardless of ``workers``.
        worker_timeout_factor: Multiplier on a task's solver budget used
            for its wall-clock deadline in parallel mode (hung-worker
            backstop; see :class:`~repro.core.parallel.ParallelDispatcher`).
        worker_timeout_margin: Constant slack (seconds) added to every
            parallel task deadline.
        profile: Opt-in per-span cProfile capture (CLI ``--profile``):
            partitioning and subproblem-solve spans gain a top-N
            cumulative-time hotspot table (see :mod:`repro.obs.profile`).
            Off by default — cProfile instruments every Python call, so
            expect 1.3–2x overhead on solver-heavy spans when enabled.
        profile_top: Rows kept in each span's hotspot table.
    """

    master_ratio: float | None = None
    max_subproblem_services: int = 48
    partition_samples: int = 32
    backend: str = "highs"
    min_subproblem_budget: float = 0.5
    repair_unplaced: bool = True
    local_search_seconds: float = 0.0
    seed: int = 0
    workers: int = 1
    parallel: bool | None = None
    worker_timeout_factor: float = 2.0
    worker_timeout_margin: float = 5.0
    profile: bool = False
    profile_top: int = 10


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for faulted migration commands.

    Attributes:
        max_attempts: Total attempts per command (1 disables retries).
        base_delay: Backoff delay (seconds) before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
        max_delay: Cap on any single backoff delay.
        jitter: Fraction of the delay added as seeded random jitter
            (``delay * (1 + jitter * u)`` with ``u`` uniform in [0, 1)).
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ProblemValidationError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ProblemValidationError("RetryPolicy delays must be non-negative")

    def delay(self, retry_index: int, jitter_draw: float = 0.0) -> float:
        """Backoff delay before retry ``retry_index`` (0-based)."""
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor**retry_index
        )
        return delay * (1.0 + self.jitter * jitter_draw)


@dataclass(frozen=True)
class DegradationPolicy:
    """The CronJob's degradation ladder for cycles that fault mid-apply.

    Rungs fire in order until one resolves the cycle:

    1. **retry** — revert to the pre-cycle placement and re-run the whole
       cycle (collect → solve → apply), up to ``cycle_retries`` times.
    2. **greedy** — keep the partial migration up to the last SLA-safe
       step boundary and let the greedy default scheduler re-solve the
       residual (place the still-missing containers).
    3. **skip** — revert to the pre-cycle placement, tag the machines
       involved in permanently failed commands unschedulable for
       ``tag_seconds``, and skip the cycle.

    Attributes:
        cycle_retries: Full-cycle retries before degrading further.
        greedy_residual: Whether rung 2 is enabled.
        skip_and_tag: Whether rung 3 tags offending machines (the cycle is
            skipped either way when rung 2 cannot restore the SLA floor).
        tag_seconds: Unschedulable-tag duration for rung 3 (default: the
            paper's 3-day churn guard).
    """

    cycle_retries: int = 1
    greedy_residual: bool = True
    skip_and_tag: bool = True
    tag_seconds: float = 3 * 24 * 3600.0

    def __post_init__(self) -> None:
        if self.cycle_retries < 0:
            raise ProblemValidationError(
                f"DegradationPolicy.cycle_retries must be >= 0, "
                f"got {self.cycle_retries}"
            )

    @classmethod
    def parse(cls, spec: str) -> "DegradationPolicy":
        """Build a policy from a ladder spec like ``"retry:2,greedy,skip"``.

        Each comma-separated rung enables one ladder stage; ``retry`` takes
        an optional ``:N`` count.  Omitted rungs are disabled, so
        ``"greedy"`` means no cycle retries and no machine tagging.
        """
        retries = 0
        greedy = False
        skip = False
        for raw in spec.split(","):
            rung = raw.strip().lower()
            if not rung:
                continue
            if rung.startswith("retry"):
                _, _, count = rung.partition(":")
                retries = int(count) if count else 1
            elif rung == "greedy":
                greedy = True
            elif rung == "skip":
                skip = True
            else:
                raise ProblemValidationError(
                    f"unknown degradation rung {rung!r} "
                    f"(expected retry[:N], greedy, or skip)"
                )
        return cls(cycle_retries=retries, greedy_residual=greedy, skip_and_tag=skip)

    def ladder(self) -> str:
        """Canonical spec string (inverse of :meth:`parse`)."""
        rungs = []
        if self.cycle_retries > 0:
            rungs.append(f"retry:{self.cycle_retries}")
        if self.greedy_residual:
            rungs.append("greedy")
        if self.skip_and_tag:
            rungs.append("skip")
        return ",".join(rungs) or "none"
