"""Core RASA problem model, objective, and the three-phase scheduler facade."""

from repro.core.affinity import AffinityGraph
from repro.core.config import DegradationPolicy, RASAConfig, RetryPolicy
from repro.core.problem import (
    AntiAffinityRule,
    Machine,
    RASAProblem,
    Service,
)
from repro.core.solution import Assignment, FeasibilityReport


def __getattr__(name: str):
    # RASAScheduler imports partitioning/selection/solvers, which import
    # repro.core; resolve it lazily to keep the package import acyclic.
    if name in ("RASAScheduler", "RASAResult", "SubproblemReport"):
        from repro.core import rasa

        return getattr(rasa, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AffinityGraph",
    "AntiAffinityRule",
    "Assignment",
    "DegradationPolicy",
    "FeasibilityReport",
    "RetryPolicy",
    "Machine",
    "RASAConfig",
    "RASAProblem",
    "RASAResult",
    "RASAScheduler",
    "Service",
    "SubproblemReport",
]
