"""Parallel subproblem execution engine for the RASA pipeline.

Partitioning (paper Section IV) decomposes the global placement MIP into
independent subproblems, which makes the solve phase embarrassingly
parallel — the same observation POP (Narayanan et al.) exploits for
granular allocation problems.  This module runs the per-subproblem
``(select, solve)`` step in a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :func:`run_task` is the worker entry point.  It installs a fresh tracer
  and metrics registry, runs :func:`select_and_solve`, and ships the
  solve outcome *plus* the recorded observability payload (span trees,
  raw metric samples, the incumbent trajectory) back to the parent, which
  folds them into its own tracer/registry so ``--trace-out`` and
  ``--metrics-out`` stay complete under parallelism.
* :class:`ParallelDispatcher` submits one task per subproblem, enforces a
  per-task wall-clock deadline derived from the task's solver budget, and
  degrades gracefully: a crashed, failed, or timed-out worker yields a
  :class:`TaskFailure` that the caller retries sequentially in-process.

Determinism: the dispatcher reports outcomes keyed by task index, and
:class:`~repro.core.rasa.RASAScheduler` applies them in the fixed
affinity-descending order regardless of completion order, so for a given
seed the merged assignment is bit-identical to sequential mode whenever
the per-subproblem solves themselves are budget-deterministic (i.e. they
finish within their budget — always true without an overall time limit).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.problem import RASAProblem
from repro.core.solution import Assignment
from repro.obs import (
    MetricsRegistry,
    NullProfiler,
    NullTracer,
    Span,
    SpanProfiler,
    Tracer,
    get_logger,
    get_metrics,
    get_profiler,
    get_tracer,
    kv,
    use_metrics,
    use_profiler,
    use_tracer,
)
from repro.partitioning.base import Subproblem
from repro.selection.selector import AlgorithmSelector
from repro.solvers.base import SchedulingAlgorithm, SolveResult, Stopwatch


@dataclass(frozen=True)
class DefaultAlgorithmFactory:
    """Maps a selector label to a configured algorithm instance.

    A frozen dataclass (rather than a closure) so tasks can pickle it into
    worker processes.
    """

    backend: str = "highs"

    def __call__(self, label: str) -> SchedulingAlgorithm:
        from repro.solvers.column_generation import ColumnGenerationAlgorithm
        from repro.solvers.mip import MIPAlgorithm

        if label == "mip":
            return MIPAlgorithm(backend=self.backend)
        return ColumnGenerationAlgorithm(backend=self.backend)


@dataclass
class SubproblemTask:
    """One unit of parallel work: select an algorithm and solve one shard.

    Attributes:
        index: The subproblem's index in the partition (the merge key).
        subproblem: The self-contained shard to solve.
        selector: Algorithm selector; must be picklable.
        algorithm_factory: Label → algorithm mapping; must be picklable.
        budget: Per-subproblem solver time budget (seconds; None or
            ``inf`` for unlimited).
        collect_spans: Record and return tracing spans (enabled when the
            parent's tracer is live).
        profile: Capture a cProfile hotspot table on the worker's solve
            span (see :mod:`repro.obs.profile`); the table rides the span
            tree back to the parent through ``TaskOutcome.spans``.
        profile_top: Rows kept in the worker's hotspot tables.
    """

    index: int
    subproblem: Subproblem
    selector: AlgorithmSelector
    algorithm_factory: Callable[[str], SchedulingAlgorithm]
    budget: float | None = None
    collect_spans: bool = False
    profile: bool = False
    profile_top: int = 10


@dataclass
class TaskOutcome:
    """A completed task: the solve outcome plus serialized observability.

    The subproblem's :class:`~repro.core.problem.RASAProblem` is *not*
    shipped back — only the assignment matrix — so the payload stays small
    and the parent rebuilds the :class:`SolveResult` against its own copy
    of the shard via :meth:`to_solve_result`.
    """

    index: int
    label: str
    x: np.ndarray
    algorithm: str
    status: str
    runtime_seconds: float
    objective: float
    trajectory: list[tuple[float, float]] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    started_monotonic: float = 0.0

    def to_solve_result(self, problem: RASAProblem) -> SolveResult:
        """Rebuild the worker's :class:`SolveResult` against ``problem``."""
        return SolveResult(
            assignment=Assignment(problem, self.x),
            algorithm=self.algorithm,
            status=self.status,
            runtime_seconds=self.runtime_seconds,
            objective=self.objective,
            trajectory=list(self.trajectory),
        )


@dataclass
class TaskFailure:
    """A task the pool could not complete; the caller retries it inline.

    Attributes:
        index: The failed task's subproblem index.
        kind: ``"timeout"``, ``"crash"`` (worker process died), or
            ``"error"`` (the solve raised).
        error: Human-readable cause.
    """

    index: int
    kind: str
    error: str


def select_and_solve(
    subproblem: Subproblem,
    selector: AlgorithmSelector,
    algorithm_factory: Callable[[str], SchedulingAlgorithm],
    budget: float | None,
) -> tuple[str, SolveResult]:
    """Run the per-subproblem (select, solve) step with full instrumentation.

    Both execution modes share this helper — the sequential loop calls it
    against the process-wide tracer/metrics, workers call it against their
    own fresh instances — so spans and metrics have an identical shape
    regardless of where the solve ran.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    clock = Stopwatch()
    with tracer.span("rasa.select", services=subproblem.num_services) as span:
        label = selector.select(subproblem)
        span.set_tag("algorithm", label)
    metrics.histogram("rasa.phase.select.seconds").observe(clock.elapsed)
    algorithm = algorithm_factory(label)
    solve_clock = Stopwatch()
    with tracer.span(
        "rasa.solve",
        algorithm=label,
        budget=None if budget is None or budget == np.inf else budget,
        services=subproblem.num_services,
    ) as span:
        with get_profiler().capture(span):
            result = algorithm.solve(subproblem.problem, time_limit=budget)
        span.set_tag("status", result.status)
        span.set_tag("objective", result.objective)
    metrics.histogram("rasa.phase.solve.seconds").observe(solve_clock.elapsed)
    metrics.counter("rasa.subproblems.solved").inc()
    return label, result


def run_task(task: SubproblemTask) -> TaskOutcome:
    """Worker entry point: solve one task under fresh obs instruments.

    Runs inside a pool process.  Exceptions propagate — the executor
    pickles them back to the parent, where the dispatcher converts them
    into a :class:`TaskFailure`.
    """
    started = time.monotonic()
    tracer = Tracer() if task.collect_spans else NullTracer()
    registry = MetricsRegistry()
    profiler = (
        SpanProfiler(top=task.profile_top) if task.profile else NullProfiler()
    )
    with use_tracer(tracer), use_metrics(registry), use_profiler(profiler):
        label, result = select_and_solve(
            task.subproblem, task.selector, task.algorithm_factory, task.budget
        )
    return TaskOutcome(
        index=task.index,
        label=label,
        x=np.asarray(result.assignment.x),
        algorithm=result.algorithm,
        status=result.status,
        runtime_seconds=result.runtime_seconds,
        objective=result.objective,
        trajectory=list(result.trajectory),
        spans=tracer.finished_roots(),
        metrics=registry.dump_raw(),
        started_monotonic=started,
    )


class ParallelDispatcher:
    """Fans subproblem tasks out to a process pool and collects outcomes.

    Args:
        workers: Maximum worker processes.
        timeout_factor: A task's wall-clock deadline is
            ``budget * timeout_factor + timeout_margin`` — solvers enforce
            their own budget, so the deadline only catches hung or wedged
            workers.  Tasks with an unlimited budget have no deadline.
        timeout_margin: Constant slack added to every deadline (covers
            pickling, fork, and queueing time; deadlines are measured from
            submission, not task start).
        mp_context: Optional :mod:`multiprocessing` context override.
    """

    def __init__(
        self,
        workers: int,
        timeout_factor: float = 2.0,
        timeout_margin: float = 5.0,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout_factor = timeout_factor
        self.timeout_margin = timeout_margin
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def run(self, tasks: list[SubproblemTask]) -> dict[int, TaskOutcome | TaskFailure]:
        """Execute every task; never raises for per-task problems.

        Returns:
            Outcome or failure per task, keyed by ``task.index``.  The
            caller decides what to do with failures (the scheduler retries
            them sequentially with redistributed budgets).
        """
        logger = get_logger("core.parallel")
        metrics = get_metrics()
        results: dict[int, TaskOutcome | TaskFailure] = {}
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, max(1, len(tasks))),
            mp_context=self.mp_context,
        )
        try:
            submitted = time.monotonic()
            futures: list[tuple[SubproblemTask, Future, float | None]] = []
            for task in tasks:
                deadline = None
                if task.budget is not None and task.budget != np.inf:
                    deadline = (
                        submitted + task.budget * self.timeout_factor + self.timeout_margin
                    )
                futures.append((task, pool.submit(run_task, task), deadline))
            for task, future, deadline in futures:
                results[task.index] = self._collect(task, future, deadline, logger)
                if isinstance(results[task.index], TaskFailure):
                    metrics.counter("rasa.parallel.task_failures").inc()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def _collect(
        self,
        task: SubproblemTask,
        future: Future,
        deadline: float | None,
        logger,
    ) -> TaskOutcome | TaskFailure:
        """Await one future, mapping every failure mode to a TaskFailure."""
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            logger.warning(
                "worker timeout %s", kv(subproblem=task.index, budget=task.budget)
            )
            return TaskFailure(
                index=task.index,
                kind="timeout",
                error=f"no result within {timeout:.1f}s deadline",
            )
        except BrokenProcessPool as exc:
            logger.warning("worker crash %s", kv(subproblem=task.index, error=str(exc)))
            return TaskFailure(
                index=task.index, kind="crash", error=f"worker process died: {exc}"
            )
        except Exception as exc:  # solve raised inside the worker
            logger.warning("worker error %s", kv(subproblem=task.index, error=str(exc)))
            return TaskFailure(
                index=task.index, kind="error", error=f"{type(exc).__name__}: {exc}"
            )
