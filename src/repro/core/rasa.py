"""The RASA scheduler: partition → select → solve → merge (paper Section IV).

:class:`RASAScheduler` is the package's main entry point.  It wires the
multi-stage partitioner, an algorithm selector, and the scheduling algorithm
pool into the full three-phase pipeline, returning the merged cluster-wide
assignment together with per-subproblem diagnostics and an anytime
quality-over-time trajectory (used by the Fig. 10 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RASAConfig
from repro.core.problem import RASAProblem
from repro.core.solution import Assignment
from repro.obs import get_logger, get_metrics, get_tracer, kv
from repro.partitioning.base import PartitionResult, Partitioner, Subproblem
from repro.partitioning.multistage import MultiStagePartitioner
from repro.selection.selector import AlgorithmSelector, HeuristicSelector
from repro.solvers.base import SolveResult, Stopwatch
from repro.solvers.column_generation import ColumnGenerationAlgorithm
from repro.solvers.greedy import repair_unplaced
from repro.solvers.mip import MIPAlgorithm


@dataclass
class SubproblemReport:
    """Diagnostics for one solved subproblem."""

    subproblem: Subproblem
    selected_algorithm: str
    result: SolveResult


@dataclass
class RASAResult:
    """Full outcome of one RASA scheduling run.

    Attributes:
        assignment: The merged cluster-wide placement.
        gained_affinity: Normalized overall gained affinity in ``[0, 1]``.
        partition: The partitioning phase's output.
        reports: Per-subproblem algorithm choices and solve results.
        runtime_seconds: Total wall-clock time.
        trajectory: Cumulative ``(elapsed_seconds, normalized_gained)``
            points — RASA is an anytime algorithm (halting mid-run returns
            the current best).  Each subproblem solve contributes its full
            incumbent history (offset by the solve's start time), restoring
            the paper's Fig. 10 anytime-curve resolution.
        metrics: Snapshot of the process metrics registry taken when the
            run finished (solver counters, per-phase duration histograms).
    """

    assignment: Assignment
    gained_affinity: float
    partition: PartitionResult
    reports: list[SubproblemReport] = field(default_factory=list)
    runtime_seconds: float = 0.0
    trajectory: list[tuple[float, float]] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


class RASAScheduler:
    """Three-phase RASA pipeline over a pluggable partitioner and selector.

    Args:
        config: Pipeline tunables; defaults to :class:`RASAConfig` defaults.
        partitioner: Service partitioner; defaults to the paper's
            multi-stage partitioner configured from ``config``.
        selector: Algorithm selector; defaults to the heuristic rule (train
            and pass a :class:`~repro.selection.selector.GCNSelector` for
            the paper's full configuration).
    """

    def __init__(
        self,
        config: RASAConfig | None = None,
        partitioner: Partitioner | None = None,
        selector: AlgorithmSelector | None = None,
    ) -> None:
        self.config = config or RASAConfig()
        self.partitioner = partitioner or MultiStagePartitioner(
            master_ratio=self.config.master_ratio,
            max_subproblem_services=self.config.max_subproblem_services,
            max_samples=self.config.partition_samples,
            seed=self.config.seed,
        )
        self.selector = selector or HeuristicSelector()

    # ------------------------------------------------------------------
    def schedule(
        self,
        problem: RASAProblem,
        time_limit: float | None = None,
    ) -> RASAResult:
        """Compute a new cluster-wide placement maximizing gained affinity.

        Args:
            problem: The cluster instance.
            time_limit: Overall wall-clock budget; split across subproblems
                proportionally to their total affinity (important shards
                get more time).

        Returns:
            The merged placement plus per-phase diagnostics.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        logger = get_logger("core.rasa")
        watch = Stopwatch(time_limit)
        with tracer.span(
            "rasa.schedule",
            services=problem.num_services,
            machines=problem.num_machines,
            time_limit=time_limit,
        ) as run_span:
            with tracer.span("rasa.partition") as span:
                partition = self.partitioner.partition(problem)
                span.set_tag("subproblems", len(partition.subproblems))
                span.set_tag("affinity_retained", partition.affinity_retained)
            metrics.histogram("rasa.phase.partition.seconds").observe(watch.elapsed)

            merged = partition.trivial_assignment.copy()
            assignment = Assignment(problem, merged)
            trajectory = [(watch.elapsed, assignment.gained_affinity(normalized=True))]

            budgets = self._budgets(partition.subproblems, watch)
            reports: list[SubproblemReport] = []
            # Solve high-affinity shards first so early stopping keeps the
            # most valuable improvements.
            order = sorted(
                range(len(partition.subproblems)),
                key=lambda i: -partition.subproblems[i].total_affinity,
            )
            for i in order:
                subproblem = partition.subproblems[i]
                if watch.expired:
                    break
                select_start = watch.elapsed
                with tracer.span(
                    "rasa.select", services=subproblem.num_services
                ) as span:
                    label = self.selector.select(subproblem)
                    span.set_tag("algorithm", label)
                metrics.histogram("rasa.phase.select.seconds").observe(
                    watch.elapsed - select_start
                )
                algorithm = self._algorithm(label)
                budget = budgets[i]
                remaining = watch.remaining
                if remaining is not None:
                    budget = max(
                        self.config.min_subproblem_budget, min(budget, remaining)
                    )
                solve_start = watch.elapsed
                with tracer.span(
                    "rasa.solve",
                    algorithm=label,
                    budget=None if budget == np.inf else budget,
                    services=subproblem.num_services,
                ) as span:
                    result = algorithm.solve(subproblem.problem, time_limit=budget)
                    span.set_tag("status", result.status)
                    span.set_tag("objective", result.objective)
                metrics.histogram("rasa.phase.solve.seconds").observe(
                    watch.elapsed - solve_start
                )
                metrics.counter("rasa.subproblems.solved").inc()
                reports.append(
                    SubproblemReport(
                        subproblem=subproblem,
                        selected_algorithm=label,
                        result=result,
                    )
                )
                merge_start = watch.elapsed
                with tracer.span("rasa.merge", services=subproblem.num_services):
                    assignment = assignment.merge_subassignment(
                        result.assignment,
                        subproblem.service_names,
                        subproblem.machine_names,
                    )
                metrics.histogram("rasa.phase.merge.seconds").observe(
                    watch.elapsed - merge_start
                )
                self._extend_trajectory(
                    trajectory, problem, assignment, result, solve_start
                )
                trajectory.append(
                    (watch.elapsed, assignment.gained_affinity(normalized=True))
                )

            if self.config.repair_unplaced:
                with tracer.span("rasa.repair"):
                    repaired = repair_unplaced(problem, assignment.x)
                    assignment = Assignment(problem, repaired)
                trajectory.append(
                    (watch.elapsed, assignment.gained_affinity(normalized=True))
                )

            if self.config.local_search_seconds > 0:
                from repro.solvers.local_search import LocalSearchImprover

                with tracer.span(
                    "rasa.local_search", budget=self.config.local_search_seconds
                ):
                    assignment = LocalSearchImprover().improve(
                        problem, assignment, time_limit=self.config.local_search_seconds
                    )
                trajectory.append(
                    (watch.elapsed, assignment.gained_affinity(normalized=True))
                )

            gained = assignment.gained_affinity(normalized=True)
            run_span.set_tag("gained_affinity", gained)
            run_span.set_tag("subproblems_solved", len(reports))
        metrics.gauge("rasa.gained_affinity").set(gained)
        logger.info(
            "schedule done %s",
            kv(
                gained=f"{gained:.4f}",
                subproblems=len(reports),
                runtime=f"{watch.elapsed:.2f}s",
            ),
        )
        return RASAResult(
            assignment=assignment,
            gained_affinity=gained,
            partition=partition,
            reports=reports,
            runtime_seconds=watch.elapsed,
            trajectory=trajectory,
            metrics=metrics.snapshot(),
        )

    # ------------------------------------------------------------------
    def _algorithm(self, label: str):
        if label == "mip":
            return MIPAlgorithm(backend=self.config.backend)
        return ColumnGenerationAlgorithm(backend=self.config.backend)

    @staticmethod
    def _extend_trajectory(
        trajectory: list[tuple[float, float]],
        problem: RASAProblem,
        assignment: Assignment,
        result: SolveResult,
        solve_start: float,
    ) -> None:
        """Merge a subproblem's incumbent history into the run trajectory.

        The solver trajectory is ``(elapsed_since_solver_start, objective)``
        in the subproblem's unnormalized gained-affinity scale.  Each
        incumbent is mapped to the overall curve by offsetting its timestamp
        by the solve's start time and estimating the cluster-wide gained
        affinity it would have produced: the merged value minus the part of
        the final objective the incumbent had not yet reached.  Values are
        clamped to keep the anytime curve monotone (an incumbent is only
        adopted when it improves the merged placement).
        """
        total = problem.affinity.total_affinity
        if total <= 0 or not result.trajectory:
            return
        merged_unnorm = assignment.gained_affinity()
        floor = trajectory[-1][1] if trajectory else 0.0
        for elapsed, objective in result.trajectory:
            estimate = (merged_unnorm - max(0.0, result.objective - objective)) / total
            value = min(1.0, max(floor, estimate))
            trajectory.append((solve_start + max(0.0, elapsed), value))
            floor = value

    def _budgets(self, subproblems: list[Subproblem], watch: Stopwatch) -> list[float]:
        """Split the remaining budget proportionally to shard affinity.

        Every shard is guaranteed ``min_subproblem_budget``; shares above
        the floor are renormalized to the budget left after the floored
        shards take theirs, so the summed budgets never overcommit the
        overall limit (unless the floors alone already exceed it).
        """
        if watch.time_limit is None:
            return [np.inf] * len(subproblems)
        remaining = watch.remaining or 0.0
        weights = np.array([max(sp.total_affinity, 1e-12) for sp in subproblems])
        if weights.sum() == 0 or not subproblems:
            return [remaining] * len(subproblems)
        shares = weights / weights.sum()
        floor = self.config.min_subproblem_budget
        budgets = np.full(len(subproblems), floor)
        floored = np.zeros(len(subproblems), dtype=bool)
        # Waterfilling: repeatedly pin shards whose renormalized share falls
        # below the floor, re-splitting the leftover among the rest.
        while not floored.all():
            leftover = remaining - floor * floored.sum()
            if leftover <= 0:
                break
            free = ~floored
            scaled = shares[free] / shares[free].sum() * leftover
            newly = scaled < floor
            if newly.any():
                index = np.nonzero(free)[0][newly]
                floored[index] = True
                continue
            budgets[free] = scaled
            break
        return [float(b) for b in budgets]
