"""The RASA scheduler: partition → select → solve → merge (paper Section IV).

:class:`RASAScheduler` is the package's main entry point.  It wires the
multi-stage partitioner, an algorithm selector, and the scheduling algorithm
pool into the full three-phase pipeline, returning the merged cluster-wide
assignment together with per-subproblem diagnostics and an anytime
quality-over-time trajectory (used by the Fig. 10 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RASAConfig
from repro.core.problem import RASAProblem
from repro.core.solution import Assignment
from repro.partitioning.base import PartitionResult, Partitioner, Subproblem
from repro.partitioning.multistage import MultiStagePartitioner
from repro.selection.selector import AlgorithmSelector, HeuristicSelector
from repro.solvers.base import SolveResult, Stopwatch
from repro.solvers.column_generation import ColumnGenerationAlgorithm
from repro.solvers.greedy import repair_unplaced
from repro.solvers.mip import MIPAlgorithm


@dataclass
class SubproblemReport:
    """Diagnostics for one solved subproblem."""

    subproblem: Subproblem
    selected_algorithm: str
    result: SolveResult


@dataclass
class RASAResult:
    """Full outcome of one RASA scheduling run.

    Attributes:
        assignment: The merged cluster-wide placement.
        gained_affinity: Normalized overall gained affinity in ``[0, 1]``.
        partition: The partitioning phase's output.
        reports: Per-subproblem algorithm choices and solve results.
        runtime_seconds: Total wall-clock time.
        trajectory: Cumulative ``(elapsed_seconds, normalized_gained)``
            points recorded after each subproblem solve — RASA is an
            anytime algorithm (halting mid-run returns the current best).
    """

    assignment: Assignment
    gained_affinity: float
    partition: PartitionResult
    reports: list[SubproblemReport] = field(default_factory=list)
    runtime_seconds: float = 0.0
    trajectory: list[tuple[float, float]] = field(default_factory=list)


class RASAScheduler:
    """Three-phase RASA pipeline over a pluggable partitioner and selector.

    Args:
        config: Pipeline tunables; defaults to :class:`RASAConfig` defaults.
        partitioner: Service partitioner; defaults to the paper's
            multi-stage partitioner configured from ``config``.
        selector: Algorithm selector; defaults to the heuristic rule (train
            and pass a :class:`~repro.selection.selector.GCNSelector` for
            the paper's full configuration).
    """

    def __init__(
        self,
        config: RASAConfig | None = None,
        partitioner: Partitioner | None = None,
        selector: AlgorithmSelector | None = None,
    ) -> None:
        self.config = config or RASAConfig()
        self.partitioner = partitioner or MultiStagePartitioner(
            master_ratio=self.config.master_ratio,
            max_subproblem_services=self.config.max_subproblem_services,
            max_samples=self.config.partition_samples,
            seed=self.config.seed,
        )
        self.selector = selector or HeuristicSelector()

    # ------------------------------------------------------------------
    def schedule(
        self,
        problem: RASAProblem,
        time_limit: float | None = None,
    ) -> RASAResult:
        """Compute a new cluster-wide placement maximizing gained affinity.

        Args:
            problem: The cluster instance.
            time_limit: Overall wall-clock budget; split across subproblems
                proportionally to their total affinity (important shards
                get more time).

        Returns:
            The merged placement plus per-phase diagnostics.
        """
        watch = Stopwatch(time_limit)
        partition = self.partitioner.partition(problem)

        merged = partition.trivial_assignment.copy()
        assignment = Assignment(problem, merged)
        trajectory = [(watch.elapsed, assignment.gained_affinity(normalized=True))]

        budgets = self._budgets(partition.subproblems, watch)
        reports: list[SubproblemReport] = []
        # Solve high-affinity shards first so early stopping keeps the most
        # valuable improvements.
        order = sorted(
            range(len(partition.subproblems)),
            key=lambda i: -partition.subproblems[i].total_affinity,
        )
        for i in order:
            subproblem = partition.subproblems[i]
            if watch.expired:
                break
            label = self.selector.select(subproblem)
            algorithm = self._algorithm(label)
            budget = budgets[i]
            remaining = watch.remaining
            if remaining is not None:
                budget = max(self.config.min_subproblem_budget, min(budget, remaining))
            result = algorithm.solve(subproblem.problem, time_limit=budget)
            reports.append(
                SubproblemReport(
                    subproblem=subproblem,
                    selected_algorithm=label,
                    result=result,
                )
            )
            assignment = assignment.merge_subassignment(
                result.assignment,
                subproblem.service_names,
                subproblem.machine_names,
            )
            trajectory.append((watch.elapsed, assignment.gained_affinity(normalized=True)))

        if self.config.repair_unplaced:
            repaired = repair_unplaced(problem, assignment.x)
            assignment = Assignment(problem, repaired)
            trajectory.append((watch.elapsed, assignment.gained_affinity(normalized=True)))

        if self.config.local_search_seconds > 0:
            from repro.solvers.local_search import LocalSearchImprover

            assignment = LocalSearchImprover().improve(
                problem, assignment, time_limit=self.config.local_search_seconds
            )
            trajectory.append((watch.elapsed, assignment.gained_affinity(normalized=True)))

        return RASAResult(
            assignment=assignment,
            gained_affinity=assignment.gained_affinity(normalized=True),
            partition=partition,
            reports=reports,
            runtime_seconds=watch.elapsed,
            trajectory=trajectory,
        )

    # ------------------------------------------------------------------
    def _algorithm(self, label: str):
        if label == "mip":
            return MIPAlgorithm(backend=self.config.backend)
        return ColumnGenerationAlgorithm(backend=self.config.backend)

    def _budgets(self, subproblems: list[Subproblem], watch: Stopwatch) -> list[float]:
        """Split the remaining budget proportionally to shard affinity."""
        if watch.time_limit is None:
            return [np.inf] * len(subproblems)
        remaining = watch.remaining or 0.0
        weights = np.array([max(sp.total_affinity, 1e-12) for sp in subproblems])
        if weights.sum() == 0 or not subproblems:
            return [remaining] * len(subproblems)
        shares = weights / weights.sum()
        return [
            max(self.config.min_subproblem_budget, float(share * remaining))
            for share in shares
        ]
