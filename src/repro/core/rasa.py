"""The RASA scheduler: partition → select → solve → merge (paper Section IV).

:class:`RASAScheduler` is the package's main entry point.  It wires the
multi-stage partitioner, an algorithm selector, and the scheduling algorithm
pool into the full three-phase pipeline, returning the merged cluster-wide
assignment together with per-subproblem diagnostics and an anytime
quality-over-time trajectory (used by the Fig. 10 benchmark).

The solve phase runs in one of two modes:

* **sequential** (default, ``workers=1``) — subproblems are solved one at
  a time in affinity-descending order; when a shard finishes under its
  proportional budget, the unspent time is redistributed across the
  still-queued shards.
* **parallel** (``workers>1`` or ``parallel=True``) — independent
  subproblems are dispatched to a process pool
  (:mod:`repro.core.parallel`); results are merged in the same fixed
  affinity-descending order regardless of completion order, and failed or
  timed-out workers fall back to an in-process sequential retry, so
  parallelism never loses shards or reorders the merge.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RASAConfig
from repro.core.parallel import (
    DefaultAlgorithmFactory,
    ParallelDispatcher,
    SubproblemTask,
    TaskOutcome,
    select_and_solve,
)
from repro.core.problem import RASAProblem
from repro.core.solution import Assignment
from repro.obs import (
    SpanProfiler,
    get_logger,
    get_metrics,
    get_profiler,
    get_tracer,
    kv,
    use_profiler,
)
from repro.partitioning.base import PartitionResult, Partitioner, Subproblem
from repro.partitioning.multistage import MultiStagePartitioner
from repro.selection.selector import AlgorithmSelector, HeuristicSelector
from repro.solvers.base import SolveResult, Stopwatch
from repro.solvers.greedy import repair_unplaced


@dataclass
class SubproblemReport:
    """Diagnostics for one solved subproblem."""

    subproblem: Subproblem
    selected_algorithm: str
    result: SolveResult


@dataclass
class RASAResult:
    """Full outcome of one RASA scheduling run.

    Attributes:
        assignment: The merged cluster-wide placement.
        gained_affinity: Normalized overall gained affinity in ``[0, 1]``.
        partition: The partitioning phase's output.
        reports: Per-subproblem algorithm choices and solve results, in
            merge (affinity-descending) order — identical between the
            sequential and parallel modes.
        runtime_seconds: Total wall-clock time.
        trajectory: Cumulative ``(elapsed_seconds, normalized_gained)``
            points — RASA is an anytime algorithm (halting mid-run returns
            the current best).  Each subproblem solve contributes its full
            incumbent history (offset by the solve's start time), restoring
            the paper's Fig. 10 anytime-curve resolution.  Timestamps are
            non-decreasing even when parallel workers finish out of order.
        metrics: Snapshot of the process metrics registry taken when the
            run finished (solver counters, per-phase duration histograms).
    """

    assignment: Assignment
    gained_affinity: float
    partition: PartitionResult
    reports: list[SubproblemReport] = field(default_factory=list)
    runtime_seconds: float = 0.0
    trajectory: list[tuple[float, float]] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def summary_dict(self) -> dict:
        """JSON-safe, ``schema_version``-tagged summary of the run.

        The wire shape the multi-tenant service returns for an optimize
        call: the headline quality/runtime numbers plus per-subproblem
        algorithm choices — everything a remote client needs short of the
        full placement matrix (fetch the migration plan for that).
        """
        from repro.schemas import tag_schema

        return tag_schema({
            "gained_affinity": float(self.gained_affinity),
            "runtime_seconds": float(self.runtime_seconds),
            "num_services": self.assignment.problem.num_services,
            "num_machines": self.assignment.problem.num_machines,
            "num_subproblems": len(self.reports),
            "algorithms": sorted(
                {report.selected_algorithm for report in self.reports}
            ),
            "subproblems": [
                {
                    "services": report.subproblem.num_services,
                    "algorithm": report.selected_algorithm,
                    "status": report.result.status,
                    "objective": float(report.result.objective),
                }
                for report in self.reports
            ],
            "trajectory": [
                [float(t), float(v)] for t, v in self.trajectory
            ],
        })


def _append_point(
    trajectory: list[tuple[float, float]], elapsed: float, value: float
) -> None:
    """Append a trajectory point, keeping timestamps non-decreasing.

    Parallel workers start at overlapping wall-clock offsets, so mapping
    their incumbent histories into the merge order can step backwards in
    time; clamping to the previous timestamp keeps the anytime curve a
    valid function of elapsed time.
    """
    if trajectory:
        elapsed = max(elapsed, trajectory[-1][0])
    trajectory.append((elapsed, value))


class RASAScheduler:
    """Three-phase RASA pipeline over a pluggable partitioner and selector.

    Args:
        config: Pipeline tunables; defaults to :class:`RASAConfig` defaults.
        partitioner: Service partitioner; defaults to the paper's
            multi-stage partitioner configured from ``config``.
        selector: Algorithm selector; defaults to the heuristic rule (train
            and pass a :class:`~repro.selection.selector.GCNSelector` for
            the paper's full configuration).  Must be picklable when
            parallel mode is enabled.
    """

    def __init__(
        self,
        config: RASAConfig | None = None,
        partitioner: Partitioner | None = None,
        selector: AlgorithmSelector | None = None,
    ) -> None:
        self.config = config or RASAConfig()
        self.partitioner = partitioner or MultiStagePartitioner(
            master_ratio=self.config.master_ratio,
            max_subproblem_services=self.config.max_subproblem_services,
            max_samples=self.config.partition_samples,
            seed=self.config.seed,
        )
        self.selector = selector or HeuristicSelector()

    # ------------------------------------------------------------------
    def schedule(
        self,
        problem: RASAProblem,
        time_limit: float | None = None,
    ) -> RASAResult:
        """Compute a new cluster-wide placement maximizing gained affinity.

        Args:
            problem: The cluster instance.
            time_limit: Overall wall-clock budget; split across subproblems
                proportionally to their total affinity (important shards
                get more time).

        Returns:
            The merged placement plus per-phase diagnostics.
        """
        if not self.config.profile:
            return self._schedule(problem, time_limit)
        # Opt-in hotspot attribution: install a span profiler for the run
        # so partition/solve spans carry top-N cProfile tables.
        with use_profiler(SpanProfiler(top=self.config.profile_top)):
            return self._schedule(problem, time_limit)

    def _schedule(
        self,
        problem: RASAProblem,
        time_limit: float | None = None,
    ) -> RASAResult:
        """The pipeline body behind :meth:`schedule`."""
        tracer = get_tracer()
        metrics = get_metrics()
        logger = get_logger("core.rasa")
        watch = Stopwatch(time_limit)
        with tracer.span(
            "rasa.schedule",
            services=problem.num_services,
            machines=problem.num_machines,
            time_limit=time_limit,
        ) as run_span:
            with tracer.span("rasa.partition") as span:
                with get_profiler().capture(span):
                    partition = self.partitioner.partition(problem)
                span.set_tag("subproblems", len(partition.subproblems))
                span.set_tag("affinity_retained", partition.affinity_retained)
            metrics.histogram("rasa.phase.partition.seconds").observe(watch.elapsed)

            merged = partition.trivial_assignment.copy()
            assignment = Assignment(problem, merged)
            trajectory = [(watch.elapsed, assignment.gained_affinity(normalized=True))]

            reports: list[SubproblemReport] = []
            # Solve high-affinity shards first so early stopping keeps the
            # most valuable improvements; parallel mode merges in this
            # same order, so both modes produce identical results.
            order = sorted(
                range(len(partition.subproblems)),
                key=lambda i: -partition.subproblems[i].total_affinity,
            )
            workers = self._effective_workers()
            if workers > 1 and len(order) > 1:
                run_span.set_tag("workers", workers)
                assignment = self._solve_parallel(
                    problem, partition, order, assignment, trajectory,
                    reports, watch, workers, run_span,
                )
            else:
                assignment = self._solve_sequential(
                    problem, partition, order, assignment, trajectory,
                    reports, watch,
                )

            if self.config.repair_unplaced:
                with tracer.span("rasa.repair"):
                    repaired = repair_unplaced(problem, assignment.x)
                    assignment = Assignment(problem, repaired)
                _append_point(
                    trajectory, watch.elapsed, assignment.gained_affinity(normalized=True)
                )

            if self.config.local_search_seconds > 0:
                from repro.solvers.local_search import LocalSearchImprover

                with tracer.span(
                    "rasa.local_search", budget=self.config.local_search_seconds
                ):
                    assignment = LocalSearchImprover().improve(
                        problem, assignment, time_limit=self.config.local_search_seconds
                    )
                _append_point(
                    trajectory, watch.elapsed, assignment.gained_affinity(normalized=True)
                )

            gained = assignment.gained_affinity(normalized=True)
            run_span.set_tag("gained_affinity", gained)
            run_span.set_tag("subproblems_solved", len(reports))
        metrics.gauge("rasa.gained_affinity").set(gained)
        logger.info(
            "schedule done %s",
            kv(
                gained=f"{gained:.4f}",
                subproblems=len(reports),
                runtime=f"{watch.elapsed:.2f}s",
                workers=workers,
            ),
        )
        return RASAResult(
            assignment=assignment,
            gained_affinity=gained,
            partition=partition,
            reports=reports,
            runtime_seconds=watch.elapsed,
            trajectory=trajectory,
            metrics=metrics.snapshot(),
        )

    # ------------------------------------------------------------------
    # Solve phase: sequential mode
    # ------------------------------------------------------------------
    def _solve_sequential(
        self,
        problem: RASAProblem,
        partition: PartitionResult,
        order: list[int],
        assignment: Assignment,
        trajectory: list[tuple[float, float]],
        reports: list[SubproblemReport],
        watch: Stopwatch,
    ) -> Assignment:
        """Solve shards one at a time in affinity-descending order."""
        factory = DefaultAlgorithmFactory(self.config.backend)
        for position, i in enumerate(order):
            if watch.expired:
                break
            subproblem = partition.subproblems[i]
            pending = [partition.subproblems[j] for j in order[position:]]
            budget = self._next_budget(pending, watch)
            solve_start = watch.elapsed
            label, result = select_and_solve(
                subproblem, self.selector, factory, budget
            )
            reports.append(
                SubproblemReport(
                    subproblem=subproblem,
                    selected_algorithm=label,
                    result=result,
                )
            )
            assignment = self._merge_result(
                problem, assignment, subproblem, result, trajectory,
                solve_start, watch,
            )
        return assignment

    # ------------------------------------------------------------------
    # Solve phase: parallel mode
    # ------------------------------------------------------------------
    def _solve_parallel(
        self,
        problem: RASAProblem,
        partition: PartitionResult,
        order: list[int],
        assignment: Assignment,
        trajectory: list[tuple[float, float]],
        reports: list[SubproblemReport],
        watch: Stopwatch,
        workers: int,
        run_span,
    ) -> Assignment:
        """Dispatch shards to a process pool, then merge deterministically.

        Failed, crashed, or timed-out tasks are retried sequentially
        in-process with the remaining time redistributed across them, so
        one bad shard never loses the other shards' results.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        logger = get_logger("core.rasa")
        subproblems = partition.subproblems
        factory = DefaultAlgorithmFactory(self.config.backend)

        budgets = self._budgets([subproblems[i] for i in order], watch)
        remaining = watch.remaining
        tasks = []
        for position, i in enumerate(order):
            budget = budgets[position]
            if remaining is not None:
                budget = max(
                    self.config.min_subproblem_budget, min(budget, remaining)
                )
            tasks.append(
                SubproblemTask(
                    index=i,
                    subproblem=subproblems[i],
                    selector=self.selector,
                    algorithm_factory=factory,
                    budget=budget,
                    # Worker hotspot tables ride the span trees, so
                    # profiling in workers requires span collection.
                    collect_spans=tracer.enabled or self.config.profile,
                    profile=self.config.profile,
                    profile_top=self.config.profile_top,
                )
            )
        dispatcher = ParallelDispatcher(
            workers=workers,
            timeout_factor=self.config.worker_timeout_factor,
            timeout_margin=self.config.worker_timeout_margin,
        )
        with tracer.span("rasa.dispatch", workers=workers, tasks=len(tasks)):
            outcomes = dispatcher.run(tasks)

        # Rebuild worker results, folding their obs payloads into the
        # parent tracer/metrics so exports stay complete.
        solved: dict[int, tuple[str, SolveResult, float]] = {}
        for i in order:
            outcome = outcomes.get(i)
            if not isinstance(outcome, TaskOutcome):
                continue
            offset = max(0.0, outcome.started_monotonic - watch.start_monotonic)
            if tracer.enabled:
                tracer.adopt(outcome.spans, offset=run_span.start + offset)
            metrics.merge(outcome.metrics)
            solved[i] = (
                outcome.label,
                outcome.to_solve_result(subproblems[i].problem),
                offset,
            )

        # Sequential-retry fallback, with leftover time redistributed
        # across the failed shards only.
        failed = [i for i in order if i not in solved]
        for position, i in enumerate(failed):
            if watch.expired:
                break
            failure = outcomes.get(i)
            logger.warning(
                "sequential retry %s",
                kv(
                    subproblem=i,
                    kind=getattr(failure, "kind", "missing"),
                    error=getattr(failure, "error", ""),
                ),
            )
            metrics.counter("rasa.parallel.retries").inc()
            pending = [subproblems[j] for j in failed[position:]]
            budget = self._next_budget(pending, watch)
            solve_start = watch.elapsed
            label, result = select_and_solve(
                subproblems[i], self.selector, factory, budget
            )
            solved[i] = (label, result, solve_start)

        # Deterministic merge: fixed affinity-descending order, regardless
        # of which worker finished first.
        for i in order:
            if i not in solved:
                continue
            subproblem = subproblems[i]
            label, result, solve_start = solved[i]
            reports.append(
                SubproblemReport(
                    subproblem=subproblem,
                    selected_algorithm=label,
                    result=result,
                )
            )
            assignment = self._merge_result(
                problem, assignment, subproblem, result, trajectory,
                solve_start, watch,
            )
        return assignment

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _merge_result(
        self,
        problem: RASAProblem,
        assignment: Assignment,
        subproblem: Subproblem,
        result: SolveResult,
        trajectory: list[tuple[float, float]],
        solve_start: float,
        watch: Stopwatch,
    ) -> Assignment:
        """Overlay one shard's solution and extend the anytime trajectory."""
        tracer = get_tracer()
        metrics = get_metrics()
        merge_start = watch.elapsed
        with tracer.span("rasa.merge", services=subproblem.num_services):
            assignment = assignment.merge_subassignment(
                result.assignment,
                subproblem.service_names,
                subproblem.machine_names,
            )
        metrics.histogram("rasa.phase.merge.seconds").observe(
            watch.elapsed - merge_start
        )
        self._extend_trajectory(trajectory, problem, assignment, result, solve_start)
        _append_point(
            trajectory, watch.elapsed, assignment.gained_affinity(normalized=True)
        )
        return assignment

    def _effective_workers(self) -> int:
        """Resolve the ``workers``/``parallel`` pair into a worker count."""
        config = self.config
        if config.parallel is False:
            return 1
        workers = config.workers
        if config.parallel and workers <= 1:
            workers = os.cpu_count() or 1
        return max(1, workers)

    def _next_budget(self, pending: list[Subproblem], watch: Stopwatch) -> float:
        """Budget for the first of the still-queued shards.

        Recomputing the affinity-proportional waterfilling split over the
        *remaining* shards each time redistributes time that earlier
        shards left unspent (and absorbs any overrun) instead of pinning
        every shard to the split computed up front.
        """
        budget = self._budgets(pending, watch)[0]
        remaining = watch.remaining
        if remaining is not None:
            budget = max(self.config.min_subproblem_budget, min(budget, remaining))
        return budget

    def _algorithm(self, label: str):
        """Label → algorithm instance (kept for API compatibility)."""
        return DefaultAlgorithmFactory(self.config.backend)(label)

    @staticmethod
    def _extend_trajectory(
        trajectory: list[tuple[float, float]],
        problem: RASAProblem,
        assignment: Assignment,
        result: SolveResult,
        solve_start: float,
    ) -> None:
        """Merge a subproblem's incumbent history into the run trajectory.

        The solver trajectory is ``(elapsed_since_solver_start, objective)``
        in the subproblem's unnormalized gained-affinity scale.  Each
        incumbent is mapped to the overall curve by offsetting its timestamp
        by the solve's start time and estimating the cluster-wide gained
        affinity it would have produced: the merged value minus the part of
        the final objective the incumbent had not yet reached.  Values are
        clamped to keep the anytime curve monotone (an incumbent is only
        adopted when it improves the merged placement).
        """
        total = problem.affinity.total_affinity
        if total <= 0 or not result.trajectory:
            return
        merged_unnorm = assignment.gained_affinity()
        floor = trajectory[-1][1] if trajectory else 0.0
        for elapsed, objective in result.trajectory:
            estimate = (merged_unnorm - max(0.0, result.objective - objective)) / total
            value = min(1.0, max(floor, estimate))
            _append_point(trajectory, solve_start + max(0.0, elapsed), value)
            floor = value

    def _budgets(self, subproblems: list[Subproblem], watch: Stopwatch) -> list[float]:
        """Split the remaining budget proportionally to shard affinity.

        Every shard is guaranteed ``min_subproblem_budget``; shares above
        the floor are renormalized to the budget left after the floored
        shards take theirs, so the summed budgets never overcommit the
        overall limit (unless the floors alone already exceed it).
        """
        if watch.time_limit is None:
            return [np.inf] * len(subproblems)
        remaining = watch.remaining or 0.0
        weights = np.array([max(sp.total_affinity, 1e-12) for sp in subproblems])
        if weights.sum() == 0 or not subproblems:
            return [remaining] * len(subproblems)
        shares = weights / weights.sum()
        floor = self.config.min_subproblem_budget
        budgets = np.full(len(subproblems), floor)
        floored = np.zeros(len(subproblems), dtype=bool)
        # Waterfilling: repeatedly pin shards whose renormalized share falls
        # below the floor, re-splitting the leftover among the rest.
        while not floored.all():
            leftover = remaining - floor * floored.sum()
            if leftover <= 0:
                break
            free = ~floored
            scaled = shares[free] / shares[free].sum() * leftover
            newly = scaled < floor
            if newly.any():
                index = np.nonzero(free)[0][newly]
                floored[index] = True
                continue
            budgets[free] = scaled
            break
        return [float(b) for b in budgets]
