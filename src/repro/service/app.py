"""The multi-tenant optimizer service: a versioned REST control plane.

One process hosts N named clusters as independent tenants.  The HTTP
layer is the same stdlib :class:`~http.server.ThreadingHTTPServer`
plumbing the telemetry server uses (no new dependencies); tenant work is
executed on a :class:`~repro.service.pool.ControllerPool`, so handler
threads stay cheap and one tenant's control loop never interleaves with
itself.

Surface (all request/response documents are ``schema_version``-tagged
JSON, :mod:`repro.schemas`):

====== ================================== ===================================
Verb   Path                               Meaning
====== ================================== ===================================
GET    ``/v1/healthz``                    service health + tenant roll-up
GET    ``/metrics``                       process metrics (Prometheus text)
GET    ``/v1/tenants``                    list tenant summaries
POST   ``/v1/tenants``                    register a tenant (TenantSpec)
GET    ``/v1/tenants/<n>``                one tenant's summary
DELETE ``/v1/tenants/<n>``                deregister (final checkpoint first)
POST   ``/v1/tenants/<n>/cycles``         trigger cycles (``wait`` to block)
GET    ``/v1/tenants/<n>/cycles``         cycle reports (``since=<k>``)
GET    ``/v1/tenants/<n>/plan``           latest migration plan
POST   ``/v1/tenants/<n>/snapshots``      push collector traffic edges
POST   ``/v1/tenants/<n>/schedule``       set/clear the cron cadence
GET    ``/v1/tenants/<n>/healthz``        tenant health (503 on SLA breach)
GET    ``/v1/tenants/<n>/metrics``        tenant metrics (Prometheus text)
GET    ``/v1/tenants/<n>/events``         tenant audit log (``since=<seq>``)
GET    ``/v1/tenants/<n>/alerts``         tenant SLO burn-rate alerts
GET    ``/v1/events``                     merged audit log across tenants
GET    ``/v1/alerts``                     active alerts across tenants
GET    ``/v1/trace``                      live Chrome trace-event document
GET    ``/v1/trace/otlp``                 live OTLP/JSON trace document
GET    ``/v1/jobs/<id>``                  async trigger status
====== ================================== ===================================

Request tracing: every request runs under a
:class:`~repro.obs.context.TraceContext` — continued from the client's
W3C ``traceparent`` header when one is sent, minted from the service's
deterministic :class:`~repro.obs.context.TraceIdFactory` otherwise.  The
context crosses the controller-pool thread boundary with the job, so the
HTTP access-log line, the tenant's audit events, the cycle's spans
(Chrome and OTLP exports), and ``CycleReport.trace_id`` all carry the
same trace id.  Unhandled errors return a uniform envelope
``{"error", "error_id", "trace_id"}`` with the exception detail kept in
the server log under the ``error_id``.

Scheduling: a ticker thread fires one cycle per tenant every
``schedule_seconds`` (wall clock).  A scheduled tick is skipped while the
tenant's previous scheduled cycle is still queued or running — cron
cycles never stack up behind a slow solve.

Durability: with ``checkpoint_root`` set, each tenant journals under
``<root>/<name>`` (PR 6's WAL + snapshots), the registered spec rides in
the checkpoint, and service startup resurrects every tenant found on
disk — schedules included.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import time
from dataclasses import dataclass, replace
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.durability.checkpoint import SNAPSHOT_FILE, WAL_FILE
from repro.exceptions import ProblemValidationError
from repro.obs import get_logger, get_metrics, kv
from repro.obs.context import (
    TraceIdFactory,
    current_trace_id,
    parse_traceparent,
    use_context,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, to_otlp, to_prometheus
from repro.obs.server import JsonRequestHandler
from repro.obs.spans import Tracer, get_tracer, set_tracer
from repro.schemas import check_schema, strip_schema, tag_schema
from repro.service.pool import ControllerPool
from repro.service.tenant import Tenant, TenantSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

_TENANT_PATH = re.compile(r"^/v1/tenants/([A-Za-z0-9._-]+)(?:/([a-z]+))?$")
_JOB_PATH = re.compile(r"^/v1/jobs/(job-\d+)$")

#: Largest request body the control plane accepts (problems and traces
#: are compact JSON; anything bigger is a client bug, not a workload).
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`OptimizerService` process.

    Attributes:
        host: Bind address (loopback by default — the control plane is
            plaintext and unauthenticated).
        port: TCP port; 0 binds an ephemeral one.
        workers: Worker threads in the tenant controller pool.
        checkpoint_root: Directory tenants checkpoint under (one
            subdirectory per tenant); None disables durability.
        resume: Resurrect checkpointed tenants found under
            ``checkpoint_root`` at startup.
        tick_seconds: Cron-ticker cadence (how often due schedules are
            checked, not how often cycles run).
        tracing: Install a real process tracer at startup (when none is
            already enabled) so ``/v1/trace`` and ``/v1/trace/otlp``
            serve live spans.  Tracing is a pure observer — disabling it
            changes no report content.
        trace_seed: Seed of the deterministic trace-id factory.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    checkpoint_root: Path | None = None
    resume: bool = True
    tick_seconds: float = 0.5
    tracing: bool = True
    trace_seed: int = 0


class _Job:
    """Bookkeeping for one asynchronous cycle trigger."""

    def __init__(self, job_id: str, tenant: str, cycles: int) -> None:
        self.id = job_id
        self.tenant = tenant
        self.cycles = cycles
        self.future: "Future | None" = None
        self.submitted_at = time.time()
        self.trace_id: str | None = None

    def payload(self) -> dict:
        future = self.future
        if future is None or not future.done():
            status, error, reports = "running", None, None
        elif future.cancelled():
            status, error, reports = "cancelled", None, None
        elif future.exception() is not None:
            status, error, reports = "failed", str(future.exception()), None
        else:
            status, error = "done", None
            reports = [report.to_dict() for report in future.result()]
        return tag_schema(
            {
                "id": self.id,
                "tenant": self.tenant,
                "cycles": self.cycles,
                "status": status,
                "error": error,
                "reports": reports,
                "trace_id": self.trace_id,
            }
        )


class OptimizerService:
    """The long-running multi-tenant control plane.

    Use :func:`repro.api.start_service` (or ``rasa serve``) rather than
    constructing this directly; both return the service started, and
    ``stop()`` shuts it down with final per-tenant checkpoints.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = ControllerPool(self.config.workers)
        self.ids = TraceIdFactory(
            seed=self.config.trace_seed, namespace="rasa-service"
        )
        self._tenants: dict[str, Tenant] = {}
        self._jobs: dict[str, _Job] = {}
        self._job_ids = itertools.count(1)
        self._scheduled: dict[str, "Future | None"] = {}
        self._next_due: dict[str, float] = {}
        self._lock = threading.RLock()
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._ticker: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._prev_tracer = None
        self._logger = get_logger("service.app")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Resume checkpointed tenants, bind, and serve; returns the port."""
        if self._httpd is not None:
            return self.port
        if self.config.tracing and not get_tracer().enabled:
            # Install a live tracer for /v1/trace[.otlp]; restored on
            # stop().  An already-enabled tracer (e.g. a test's) is kept.
            self._prev_tracer = set_tracer(Tracer())
        self.pool.start()
        if self.config.checkpoint_root is not None and self.config.resume:
            self._resume_tenants(self.config.checkpoint_root)
        httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _ServiceRequestHandler
        )
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._http_thread = threading.Thread(
            target=httpd.serve_forever, name="rasa-service-http", daemon=True
        )
        self._http_thread.start()
        self._ticker = threading.Thread(
            target=self._tick_loop, name="rasa-service-ticker", daemon=True
        )
        self._ticker.start()
        self._logger.info(
            "service up %s",
            kv(url=self.url, workers=self.config.workers,
               tenants=len(self._tenants)),
        )
        return self.port

    def stop(self, *, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: drain tenant work, write final checkpoints.

        Order matters: the ticker stops first (no new scheduled cycles),
        then the HTTP listener (no new triggers), then the pool drains
        in-flight cycles, and only then does every durable tenant write
        its final snapshot — so the checkpoints on disk describe a fully
        quiesced service.
        """
        self._stop_event.set()
        ticker, self._ticker = self._ticker, None
        if ticker is not None:
            ticker.join(timeout=5.0)
        httpd, self._httpd = self._httpd, None
        thread, self._http_thread = self._http_thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.pool.stop(drain=True, timeout=timeout)
        with self._lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            try:
                tenant.checkpoint()
            except Exception as exc:  # noqa: BLE001 - best-effort shutdown
                self._logger.warning(
                    "final checkpoint failed %s",
                    kv(tenant=tenant.name, error=str(exc)),
                )
        if self._prev_tracer is not None:
            set_tracer(self._prev_tracer)
            self._prev_tracer = None
        self._logger.info("service stopped %s", kv(tenants=len(tenants)))

    def __enter__(self) -> "OptimizerService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.config.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------
    def register(self, spec: TenantSpec) -> Tenant:
        """Register a tenant from its spec (409 at the HTTP layer if taken)."""
        checkpoint_dir = None
        if self.config.checkpoint_root is not None:
            checkpoint_dir = self.config.checkpoint_root / spec.name
        with self._lock:
            if spec.name in self._tenants:
                raise KeyError(spec.name)
        # World building happens outside the lock (it can be seconds for
        # a big trace); the insert re-checks for a racing duplicate.
        tenant = Tenant(spec, checkpoint_dir=checkpoint_dir)
        with self._lock:
            if spec.name in self._tenants:
                raise KeyError(spec.name)
            self._tenants[spec.name] = tenant
            self._arm_schedule(tenant)
        get_metrics().counter("service.tenants.registered").inc()
        tenant.record_event(
            "tenant.registered",
            trace_id=current_trace_id(),
            detail={"mode": spec.mode, "durable": checkpoint_dir is not None},
        )
        self._logger.info(
            "tenant registered %s",
            kv(tenant=spec.name, mode=spec.mode,
               slot=self.pool.slot_for(spec.name),
               durable=checkpoint_dir is not None),
        )
        return tenant

    def deregister(self, name: str) -> Tenant:
        """Remove a tenant (its checkpoint directory is left on disk)."""
        with self._lock:
            tenant = self._tenants.pop(name)
            self._scheduled.pop(name, None)
            self._next_due.pop(name, None)
        # Recorded before the final checkpoint so the event survives on
        # disk with the rest of the tenant's audit log.
        tenant.record_event(
            "tenant.deregistered",
            cycle=tenant.cycles_completed,
            trace_id=current_trace_id(),
        )
        tenant.checkpoint()
        get_metrics().counter("service.tenants.deregistered").inc()
        self._logger.info("tenant deregistered %s", kv(tenant=name))
        return tenant

    def tenant(self, name: str) -> Tenant:
        with self._lock:
            return self._tenants[name]

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return [
                self._tenants[name] for name in sorted(self._tenants)
            ]

    def trigger(self, name: str, cycles: int) -> _Job:
        """Queue ``cycles`` cycles for a tenant; returns the job record."""
        tenant = self.tenant(name)
        job = _Job(f"job-{next(self._job_ids)}", name, cycles)
        job.trace_id = current_trace_id()
        with self._lock:
            self._jobs[job.id] = job
        job.future = self.pool.submit(name, lambda: tenant.run_cycles(cycles))
        return job

    def job(self, job_id: str) -> _Job:
        with self._lock:
            return self._jobs[job_id]

    def set_schedule(self, name: str, schedule_seconds: float | None) -> Tenant:
        """Set or clear a tenant's wall-clock cron cadence."""
        tenant = self.tenant(name)
        tenant.spec = replace(tenant.spec, schedule_seconds=schedule_seconds)
        if tenant.durable is not None:
            tenant.durable.run_payload["tenant_spec"] = tenant.spec.to_dict()
        with self._lock:
            self._arm_schedule(tenant)
        return tenant

    def health(self) -> dict:
        """The service-level ``/v1/healthz`` document."""
        with self._lock:
            tenants = dict(self._tenants)
        statuses = {
            name: tenant.hub.health()["status"]
            for name, tenant in sorted(tenants.items())
        }
        return tag_schema(
            {
                "status": "ok",
                "tenants": len(tenants),
                "workers": self.config.workers,
                "tenant_status": statuses,
                "checkpoint_root": (
                    None
                    if self.config.checkpoint_root is None
                    else str(self.config.checkpoint_root)
                ),
            }
        )

    # ------------------------------------------------------------------
    # Observability roll-ups
    # ------------------------------------------------------------------
    def events_doc(self) -> dict:
        """The merged ``/v1/events`` document (all tenants, time-ordered)."""
        merged: list[dict] = []
        names: list[str] = []
        for tenant in self.tenants():
            names.append(tenant.name)
            merged.extend(tenant.events.snapshot())
        merged.sort(key=lambda e: (e["ts"], e["tenant"] or "", e["seq"]))
        return tag_schema({"tenants": names, "events": merged})

    def alerts_doc(self) -> dict:
        """The ``/v1/alerts`` document: every tenant's active alerts."""
        alerts: list[dict] = []
        observed: dict[str, int] = {}
        for tenant in self.tenants():
            observed[tenant.name] = tenant.slo.cycles_observed
            alerts.extend(tenant.slo.alerts())
        return tag_schema(
            {"alerts": alerts, "cycles_observed": observed}
        )

    def trace_chrome(self) -> dict:
        """Live Chrome trace-event document from the process tracer."""
        tracer = get_tracer()
        if not tracer.enabled:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return tracer.to_chrome()

    def trace_otlp(self) -> dict:
        """Live OTLP/JSON trace document from the process tracer."""
        return to_otlp(get_tracer().finished_roots(),
                       service_name="rasa-service")

    # ------------------------------------------------------------------
    # Cron ticker
    # ------------------------------------------------------------------
    def _arm_schedule(self, tenant: Tenant) -> None:
        """(Re)arm the ticker for a tenant; caller holds the lock."""
        every = tenant.spec.schedule_seconds
        if every is None:
            self._next_due.pop(tenant.name, None)
            self._scheduled.pop(tenant.name, None)
        else:
            self._next_due[tenant.name] = time.monotonic() + float(every)

    def _tick_loop(self) -> None:
        while not self._stop_event.wait(self.config.tick_seconds):
            now = time.monotonic()
            with self._lock:
                due = [
                    name
                    for name, at in self._next_due.items()
                    if now >= at and name in self._tenants
                ]
            for name in due:
                self._fire_scheduled(name, now)

    def _fire_scheduled(self, name: str, now: float) -> None:
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None or tenant.spec.schedule_seconds is None:
                return
            previous = self._scheduled.get(name)
            if previous is not None and not previous.done():
                # The previous scheduled cycle is still queued or running:
                # skip this tick rather than stacking cycles behind it.
                self._next_due[name] = now + float(tenant.spec.schedule_seconds)
                get_metrics().counter("service.schedule.skipped").inc()
                tenant.record_event(
                    "schedule.tick_skipped",
                    cycle=tenant.cycles_completed,
                    detail={"reason": "previous scheduled cycle still running"},
                )
                return
            self._next_due[name] = now + float(tenant.spec.schedule_seconds)
        # Each scheduled firing gets its own trace context (there is no
        # client request to inherit one from); the pool carries it to the
        # worker thread like any triggered cycle.
        try:
            with use_context(self.ids.new_context()):
                future = self.pool.submit(name, lambda: tenant.run_cycles(1))
        except RuntimeError:
            return  # pool already stopped; shutdown is racing the ticker
        with self._lock:
            self._scheduled[name] = future
        get_metrics().counter("service.schedule.fired").inc()

    # ------------------------------------------------------------------
    # Startup resume
    # ------------------------------------------------------------------
    def _resume_tenants(self, root: Path) -> None:
        if not root.is_dir():
            return
        for child in sorted(root.iterdir()):
            if not child.is_dir():
                continue
            if not (
                (child / SNAPSHOT_FILE).exists() or (child / WAL_FILE).exists()
            ):
                continue
            try:
                tenant = Tenant.resume(child)
            except Exception as exc:  # noqa: BLE001 - keep serving the rest
                self._logger.warning(
                    "tenant resume failed %s",
                    kv(dir=str(child), error=str(exc)),
                )
                get_metrics().counter("service.tenants.resume_failed").inc()
                continue
            with self._lock:
                self._tenants[tenant.name] = tenant
                self._arm_schedule(tenant)
            get_metrics().counter("service.tenants.resumed").inc()
            self._logger.info(
                "tenant resumed %s",
                kv(tenant=tenant.name, cycles=tenant.cycles_completed),
            )


class _ServiceRequestHandler(JsonRequestHandler):
    """Routes the control-plane REST surface onto :class:`OptimizerService`."""

    logger_name = "service.app"

    @property
    def svc(self) -> OptimizerService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ProblemValidationError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProblemValidationError(
                f"request body is not valid JSON: {exc}"
            ) from exc

    def _query(self) -> dict[str, str]:
        if "?" not in self.path:
            return {}
        out: dict[str, str] = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            out[key] = value
        return out

    def _dispatch(self, method: str) -> None:
        svc = self.svc
        self._tenant_name: str | None = None
        parsed = parse_traceparent(self.headers.get("traceparent"))
        # Continue the client's trace when a valid traceparent came in;
        # mint a fresh deterministic context otherwise.
        ctx = svc.ids.child(parsed) if parsed else svc.ids.new_context()
        started = time.perf_counter()
        with use_context(ctx):
            try:
                self._route(method)
            except KeyError as exc:
                self.respond_json(
                    404, tag_schema({"error": f"not found: {exc}"})
                )
            except ProblemValidationError as exc:
                self.respond_json(400, tag_schema({"error": str(exc)}))
            except Exception as exc:  # noqa: BLE001 - surface, don't kill thread
                # Uniform 500 envelope: the exception detail stays in the
                # server log, keyed by error_id, so internals never leak
                # to clients but remain one grep away.
                error_id = svc.ids.error_id()
                get_logger(self.logger_name).error(
                    "request failed %s",
                    kv(
                        path=self.path,
                        error_id=error_id,
                        trace_id=ctx.trace_id,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
                self.respond_json(
                    500,
                    tag_schema(
                        {
                            "error": "internal server error",
                            "error_id": error_id,
                            "trace_id": ctx.trace_id,
                        }
                    ),
                )
            finally:
                self.log_access(
                    (time.perf_counter() - started) * 1e3,
                    tenant=self._tenant_name,
                    trace_id=ctx.trace_id,
                )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    def _route(self, method: str) -> None:
        svc = self.svc
        path = self.path.split("?", 1)[0].rstrip("/") or "/"

        if method == "GET" and path == "/v1/healthz":
            self.respond_json(200, svc.health())
            return
        if method == "GET" and path == "/metrics":
            body = to_prometheus(get_metrics().snapshot())
            self.respond(200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8"))
            return
        if method == "GET" and path == "/v1/events":
            self.respond_json(200, svc.events_doc())
            return
        if method == "GET" and path == "/v1/alerts":
            self.respond_json(200, svc.alerts_doc())
            return
        if method == "GET" and path == "/v1/trace":
            self.respond_json(200, svc.trace_chrome())
            return
        if method == "GET" and path == "/v1/trace/otlp":
            self.respond_json(200, svc.trace_otlp())
            return
        if path == "/v1/tenants":
            if method == "GET":
                self.respond_json(
                    200,
                    tag_schema(
                        {"tenants": [t.summary() for t in svc.tenants()]}
                    ),
                )
                return
            if method == "POST":
                payload = self._read_body()
                if not isinstance(payload, dict):
                    raise ProblemValidationError(
                        "tenant registration body must be a JSON object"
                    )
                spec = TenantSpec.from_dict(payload)
                try:
                    tenant = svc.register(spec)
                except KeyError:
                    self.respond_json(
                        409,
                        tag_schema(
                            {"error": f"tenant {spec.name!r} already exists"}
                        ),
                    )
                    return
                self.respond_json(201, tenant.summary())
                return
        job_match = _JOB_PATH.match(path)
        if job_match and method == "GET":
            self.respond_json(200, svc.job(job_match.group(1)).payload())
            return
        tenant_match = _TENANT_PATH.match(path)
        if tenant_match:
            self._route_tenant(
                method, tenant_match.group(1), tenant_match.group(2)
            )
            return
        self.respond_json(404, tag_schema({"error": f"unknown path {path!r}"}))

    def _route_tenant(
        self, method: str, name: str, leaf: str | None
    ) -> None:
        svc = self.svc
        self._tenant_name = name
        if leaf is None:
            if method == "GET":
                self.respond_json(200, svc.tenant(name).summary())
                return
            if method == "DELETE":
                tenant = svc.deregister(name)
                self.respond_json(
                    200,
                    tag_schema(
                        {
                            "deregistered": name,
                            "cycles_completed": tenant.cycles_completed,
                        }
                    ),
                )
                return
        elif leaf == "cycles":
            if method == "POST":
                body = self._read_body()
                body = strip_schema(body) if isinstance(body, dict) else {}
                check_schema(body, "trigger")
                cycles = int(body.get("cycles", 1))
                job = svc.trigger(name, cycles)
                if body.get("wait") or self._query().get("wait"):
                    job.future.result()
                    self.respond_json(200, job.payload())
                else:
                    self.respond_json(202, job.payload())
                return
            if method == "GET":
                since = int(self._query().get("since", 0))
                history = svc.tenant(name).controller.history
                self.respond_json(
                    200,
                    tag_schema(
                        {
                            "tenant": name,
                            "since": since,
                            "reports": [
                                report.to_dict() for report in history[since:]
                            ],
                        }
                    ),
                )
                return
        elif leaf == "plan" and method == "GET":
            plan = svc.tenant(name).last_plan
            if plan is None:
                self.respond_json(
                    404,
                    tag_schema(
                        {"error": f"tenant {name!r} has not built a plan yet"}
                    ),
                )
                return
            self.respond_json(200, plan.to_dict())
            return
        elif leaf == "healthz" and method == "GET":
            health = svc.tenant(name).hub.health()
            code = 503 if health["status"] == "sla_violated" else 200
            self.respond_json(code, tag_schema(health))
            return
        elif leaf == "metrics" and method == "GET":
            body = to_prometheus(svc.tenant(name).registry.snapshot())
            self.respond(200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8"))
            return
        elif leaf == "events" and method == "GET":
            since = int(self._query().get("since", 0))
            self.respond_json(
                200, tag_schema(svc.tenant(name).events_since(since))
            )
            return
        elif leaf == "alerts" and method == "GET":
            self.respond_json(200, tag_schema(svc.tenant(name).alerts_doc()))
            return
        elif leaf == "snapshots" and method == "POST":
            body = self._read_body()
            if not isinstance(body, dict):
                raise ProblemValidationError(
                    "snapshot body must be a JSON object with 'edges'"
                )
            check_schema(body, "snapshot")
            edges = strip_schema(body).get("edges")
            if not isinstance(edges, list):
                raise ProblemValidationError(
                    "snapshot body needs an 'edges' list of "
                    "[service_a, service_b, qps] triples"
                )
            count = svc.tenant(name).push_snapshot(edges)
            self.respond_json(200, tag_schema({"tenant": name, "edges": count}))
            return
        elif leaf == "schedule" and method == "POST":
            body = self._read_body()
            if not isinstance(body, dict) or "schedule_seconds" not in strip_schema(body):
                raise ProblemValidationError(
                    "schedule body needs 'schedule_seconds' (number or null)"
                )
            check_schema(body, "schedule")
            value = strip_schema(body)["schedule_seconds"]
            seconds = None if value is None else float(value)
            tenant = svc.set_schedule(name, seconds)
            self.respond_json(
                200,
                tag_schema(
                    {"tenant": name, "schedule_seconds": tenant.spec.schedule_seconds}
                ),
            )
            return
        self.respond_json(
            404,
            tag_schema({"error": f"unknown tenant path {self.path!r}"}),
        )
