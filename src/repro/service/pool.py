"""Bounded worker pool sharding tenants onto slots by consistent hashing.

The service may host far more tenants than it can run threads, so tenant
work is sharded onto a fixed worker set.  Two disciplines matter:

* **per-tenant serialization** — all jobs for one tenant run on one slot,
  FIFO, so a tenant's control loop never interleaves with itself (cycle
  N+1 starts only after cycle N committed — the same discipline the
  parallel subproblem engine uses for its deterministic merge: concurrency
  between independent units, strict order within one).
* **tenant → slot stability** — the mapping is a consistent-hash ring
  (SHA-1, virtual nodes), so growing the worker set remaps only ~1/slots
  of the tenants instead of reshuffling everybody — the property that lets
  a horizontally sharded deployment add capacity without stampeding every
  tenant's checkpoint directory to a new owner.

Jobs are plain callables; results travel through
:class:`concurrent.futures.Future`, so callers can fire-and-forget
(trigger endpoints return 202) or block (``?wait=1``, the CLI).
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro.obs import get_logger, get_metrics, kv
from repro.obs.context import current_context, use_context

#: Virtual nodes per slot on the hash ring — enough for an even spread at
#: small slot counts without making ring construction noticeable.
VNODES_PER_SLOT = 64

#: Sentinel telling a worker thread to drain out.
_STOP = object()


def _ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring (SHA-1 prefix, platform-free)."""
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent tenant → slot mapping with virtual nodes.

    Args:
        slots: Number of physical slots (worker threads).
        vnodes: Virtual nodes per slot; more vnodes → smoother spread.
    """

    def __init__(self, slots: int, vnodes: int = VNODES_PER_SLOT) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        points: list[tuple[int, int]] = []
        for slot in range(self.slots):
            for replica in range(vnodes):
                points.append((_ring_hash(f"slot-{slot}#{replica}"), slot))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [slot for _, slot in points]

    def slot_for(self, key: str) -> int:
        """The slot owning ``key`` (first ring point clockwise of its hash)."""
        position = _ring_hash(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._owners[index]


class ControllerPool:
    """Fixed set of worker threads, one FIFO queue per slot.

    Args:
        workers: Worker-thread count (the concurrency ceiling for tenant
            control loops).
        name: Thread-name prefix (shows up in stack dumps and profilers).
    """

    def __init__(self, workers: int = 4, *, name: str = "rasa-pool") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._ring = HashRing(self.workers)
        self._queues: list[queue.Queue] = [queue.Queue() for _ in range(self.workers)]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(slot,),
                name=f"{name}-{slot}", daemon=True,
            )
            for slot in range(self.workers)
        ]
        self._started = False
        self._stopped = False
        self._lock = threading.Lock()
        self._logger = get_logger("service.pool")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin the worker threads up (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        for thread in self._threads:
            thread.start()

    def slot_for(self, tenant: str) -> int:
        """The worker slot a tenant's jobs are pinned to."""
        return self._ring.slot_for(tenant)

    def submit(self, tenant: str, fn: Callable[[], Any]) -> "Future[Any]":
        """Enqueue ``fn`` on the tenant's slot; returns its future.

        Jobs for one tenant run in submission order on one thread; jobs
        for tenants on different slots run concurrently.  The submitter's
        request :class:`~repro.obs.context.TraceContext` (when one is
        current) is captured here and reinstalled around the job on the
        worker thread — ``ContextVar`` state does not cross threads by
        itself, and this is what keeps one trace id flowing from the HTTP
        handler through the pool into the cycle spans.
        """
        if not self._started or self._stopped:
            raise RuntimeError("ControllerPool is not running")
        future: Future = Future()
        ctx = current_context()
        self._queues[self.slot_for(tenant)].put((tenant, fn, future, ctx))
        get_metrics().counter("service.pool.submitted").inc()
        return future

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every queued job has finished.

        Returns False when ``timeout`` elapsed first.  New submissions
        racing a drain are allowed (the drain just waits longer).
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        for q in self._queues:
            while q.unfinished_tasks:
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                time.sleep(0.01)
        return True

    def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers (optionally after draining queued jobs)."""
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        if drain:
            self.drain(timeout=timeout)
        for q in self._queues:
            q.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _worker(self, slot: int) -> None:
        q = self._queues[slot]
        while True:
            item = q.get()
            try:
                if item is _STOP:
                    return
                tenant, fn, future, ctx = item
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    with use_context(ctx):
                        future.set_result(fn())
                    get_metrics().counter("service.pool.completed").inc()
                except BaseException as exc:  # noqa: BLE001 - future carries it
                    get_metrics().counter("service.pool.failed").inc()
                    self._logger.warning(
                        "tenant job failed %s",
                        kv(tenant=tenant, slot=slot, error=str(exc)),
                    )
                    future.set_exception(exc)
            finally:
                q.task_done()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ControllerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
