"""One tenant = one cluster's control loop, isolated from its neighbors.

A :class:`TenantSpec` is the versioned wire payload a client registers
(``POST /v1/tenants``): the cluster source (a problem snapshot or a v2
event trace), the scheduler/chaos/degradation configuration, and an
optional wall-clock cron cadence.  A :class:`Tenant` is that spec made
live — a :class:`~repro.cluster.cronjob.CronJobController` built through
:func:`repro.api._build_loop_controller`, i.e. **exactly** the wiring
:func:`repro.api.run_control_loop` uses, so a tenant's cycle reports are
bit-identical (modulo the process-local ``metrics`` field) to the
equivalent single-tenant run.

Isolation is structural, not policed:

* each tenant owns its collector, fault injector, degradation ladder,
  telemetry hub, and metrics registry — the only shared mutable state is
  the process metrics registry, which is advisory;
* each tenant's randomness comes from its own seeded generators (the
  collector's jitter stream and the injector's per-cycle
  ``SeedSequence``), so one tenant's chaos plan can never perturb
  another's report sequence;
* each tenant checkpoints under its own directory, so PR 6's durability
  (WAL + snapshots + resume) applies per tenant.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING

from repro.cluster.collector import DataCollector
from repro.cluster.cronjob import CycleReport
from repro.core.config import DegradationPolicy, RASAConfig, RetryPolicy
from repro.exceptions import ProblemValidationError
from repro.obs import TelemetryHub
from repro.obs.context import current_trace_id
from repro.obs.events import DEFAULT_CAPACITY, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine, SLOSpec
from repro.schemas import check_schema, strip_schema, tag_schema
from repro.workloads.trace_io import problem_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cronjob import CronJobController
    from repro.durability.loop import DurableControlLoop
    from repro.migration.plan import MigrationPlan

#: Tenant names appear in URLs and checkpoint paths, so keep them tame.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class TenantSpec:
    """Versioned registration payload for one tenant.

    Exactly one of ``problem`` / ``trace`` must be set:

    * ``problem`` — a format-v1 problem snapshot
      (:func:`repro.workloads.trace_io.problem_to_dict`); the tenant runs
      CronJob cycles against a static world.
    * ``trace`` — a v2 event-trace payload (``base`` problem plus
      ``events``, as in trace files and checkpoint source payloads); the
      tenant replays the stream, applying due events before each cycle.

    Attributes:
        name: URL-safe tenant name (also the checkpoint subdirectory).
        problem: Problem snapshot payload, or None.
        trace: Event-trace payload, or None.
        config: :class:`~repro.core.config.RASAConfig` field overrides.
        faults: :class:`~repro.faults.FaultPlan` payload; None runs the
            exact fault-free path.
        degradation: :class:`DegradationPolicy` field overrides.
        retry: :class:`RetryPolicy` field overrides.
        time_limit: Per-cycle solver budget (seconds).  The service
            default is None — unlimited — because that is what keeps
            report sequences machine-independent; set a finite budget
            explicitly when pacing matters more than reproducibility.
        interval_seconds: Simulated cycle period; None uses the trace's
            recorded cadence (replay) or the half-hourly default (cron).
        sla_floor: Alive-fraction floor enforced during migrations.
        rollback_imbalance: Utilization-skew rollback threshold.
        traffic_jitter_sigma: Collector measurement drift.
        seed: Seed of the tenant's collector jitter stream.
        schedule_seconds: Wall-clock cron cadence; when set, the service
            ticker triggers one cycle this often.  None means cycles run
            only when triggered explicitly.
        checkpoint_every: Cycles between WAL compactions (durable
            tenants only).
        slo: :class:`~repro.obs.slo.SLOSpec` field overrides; None uses
            the default objectives (SLA-ok ratio only).
        event_log_size: Capacity of the tenant's audit/event ring buffer.
    """

    name: str
    problem: dict | None = None
    trace: dict | None = None
    config: dict | None = None
    faults: dict | None = None
    degradation: dict | None = None
    retry: dict | None = None
    time_limit: float | None = None
    interval_seconds: float | None = None
    sla_floor: float = 0.75
    rollback_imbalance: float | None = None
    traffic_jitter_sigma: float = 0.0
    seed: int = 0
    schedule_seconds: float | None = None
    checkpoint_every: int = 16
    slo: dict | None = None
    event_log_size: int = DEFAULT_CAPACITY

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ProblemValidationError(
                "tenant name must match [A-Za-z0-9][A-Za-z0-9._-]{0,63}, "
                f"got {self.name!r}"
            )
        if (self.problem is None) == (self.trace is None):
            raise ProblemValidationError(
                "a TenantSpec needs exactly one of 'problem' or 'trace'"
            )
        if self.schedule_seconds is not None and self.schedule_seconds <= 0:
            raise ProblemValidationError(
                f"schedule_seconds must be positive, got {self.schedule_seconds}"
            )
        if self.event_log_size < 1:
            raise ProblemValidationError(
                f"event_log_size must be >= 1, got {self.event_log_size}"
            )
        if self.slo is not None:
            try:
                SLOSpec.from_dict(self.slo)
            except (TypeError, ValueError) as exc:
                raise ProblemValidationError(
                    f"invalid tenant SLO spec: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    def slo_spec(self) -> SLOSpec:
        """The tenant's SLO spec (defaults when none was registered)."""
        if self.slo is None:
            return SLOSpec()
        return SLOSpec.from_dict(self.slo)

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"replay"`` for trace tenants, ``"cron"`` for problem tenants."""
        return "replay" if self.trace is not None else "cron"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to plain data (JSON-compatible, ``schema_version``-tagged)."""
        return tag_schema({f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSpec":
        """Deserialize a spec written by :meth:`to_dict` (or a client).

        Unknown keys raise so a typoed tunable cannot silently fall back
        to a default.
        """
        check_schema(payload, "TenantSpec")
        payload = strip_schema(payload)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ProblemValidationError(
                f"unknown TenantSpec fields: {sorted(unknown)}"
            )
        if "name" not in payload:
            raise ProblemValidationError("TenantSpec payload needs a 'name'")
        return cls(**payload)


class Tenant:
    """A registered tenant's live control loop and its local observability.

    Build fresh from a spec (optionally with a checkpoint directory for
    durability), or rebuild from a checkpoint directory with
    :meth:`resume`.  Cycle execution (:meth:`run_cycles`) is serialized
    by the pool (all of one tenant's jobs land on one worker slot), so
    the class only locks its cheap bookkeeping.
    """

    def __init__(
        self,
        spec: TenantSpec,
        *,
        checkpoint_dir: "str | Path | None" = None,
    ) -> None:
        from repro.api import _build_loop_controller

        self.spec = spec
        self.hub = TelemetryHub()
        self.registry = MetricsRegistry()
        self.events = EventLog(spec.event_log_size, tenant=spec.name)
        self.slo = SLOEngine(spec.slo_spec(), tenant=spec.name)
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self._lock = threading.Lock()
        self._folded = 0

        if spec.trace is not None:
            from repro.cluster.replay import EventTrace, event_from_dict

            payload = spec.trace
            trace = EventTrace(
                base=problem_from_dict(payload["base"]),
                events=[event_from_dict(e) for e in payload.get("events", [])],
                name=str(payload.get("name", spec.name)),
                seed=int(payload.get("seed", 0)),
                interval_seconds=float(payload.get("interval_seconds", 1800.0)),
                description=str(payload.get("description", "")),
            )
            stream = trace.cursor()
            state = stream.state
            interval = (
                spec.interval_seconds
                if spec.interval_seconds is not None
                else trace.interval_seconds
            )
        else:
            stream = None
            state = problem_from_dict(spec.problem)
            interval = (
                spec.interval_seconds
                if spec.interval_seconds is not None
                else 1800.0
            )

        self.controller: "CronJobController" = _build_loop_controller(
            state,
            stream=stream,
            config=RASAConfig(**spec.config) if spec.config else None,
            faults=spec.faults,
            time_limit=spec.time_limit,
            interval_seconds=float(interval),
            sla_floor=spec.sla_floor,
            rollback_imbalance=spec.rollback_imbalance,
            degradation=(
                DegradationPolicy(**spec.degradation) if spec.degradation else None
            ),
            retry=RetryPolicy(**spec.retry) if spec.retry else None,
            traffic_jitter_sigma=spec.traffic_jitter_sigma,
            seed=spec.seed,
            telemetry=self.hub,
        )

        self.durable: "DurableControlLoop | None" = None
        if self.checkpoint_dir is not None:
            from repro.durability.loop import build_durable_loop

            self.durable = build_durable_loop(
                self.controller,
                checkpoint_dir=self.checkpoint_dir,
                total_cycles=len(self.controller.history),
                mode=spec.mode,
                seed=spec.seed,
                traffic_jitter_sigma=spec.traffic_jitter_sigma,
                checkpoint_every=spec.checkpoint_every,
            )
            # Stash the spec inside the run payload so a service restart
            # can resurrect the tenant (schedule included) from disk alone.
            self.durable.run_payload["tenant_spec"] = spec.to_dict()
            self._arm_durable_hooks()
            self.durable.checkpoint()

    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, checkpoint_dir: "str | Path") -> "Tenant":
        """Rebuild a tenant from the checkpoint a previous run left behind.

        The restored history is republished to the tenant's telemetry hub
        and folded into its metrics registry, so ``/healthz`` and
        ``/metrics`` pick up where the previous process stopped.
        """
        from repro.durability.loop import prepare_resume

        tenant = cls.__new__(cls)
        tenant.hub = TelemetryHub()
        tenant.registry = MetricsRegistry()
        tenant.checkpoint_dir = Path(checkpoint_dir)
        tenant._lock = threading.Lock()
        tenant._folded = 0
        durable = prepare_resume(checkpoint_dir, telemetry=tenant.hub)
        spec_payload = durable.run_payload.get("tenant_spec")
        if spec_payload is None:
            raise ProblemValidationError(
                f"checkpoint at {checkpoint_dir} was not written by the "
                "multi-tenant service (no tenant_spec in its run payload)"
            )
        tenant.spec = TenantSpec.from_dict(spec_payload)
        tenant.controller = durable.controller
        tenant.durable = durable
        tenant.events = EventLog(
            tenant.spec.event_log_size, tenant=tenant.spec.name
        )
        saved_events = durable.extra_payload.get("events")
        if saved_events:
            tenant.events.restore_state(saved_events)
        tenant.slo = SLOEngine(tenant.spec.slo_spec(), tenant=tenant.spec.name)
        tenant._arm_durable_hooks()
        tenant._fold_new_reports()
        return tenant

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def cycles_completed(self) -> int:
        return len(self.controller.history)

    @property
    def last_report(self) -> "CycleReport | None":
        history = self.controller.history
        return history[-1] if history else None

    @property
    def last_plan(self) -> "MigrationPlan | None":
        return self.controller.last_plan

    # ------------------------------------------------------------------
    def run_cycles(self, cycles: int) -> list[CycleReport]:
        """Run ``cycles`` more cycles on the calling (pool worker) thread.

        Durable tenants run through their
        :class:`~repro.durability.loop.DurableControlLoop` so every
        committed cycle is journaled; the loop's target is bumped by
        ``cycles`` each trigger, which is what makes three one-cycle
        triggers produce the same checkpoint state as one three-cycle
        run.
        """
        if cycles < 1:
            raise ProblemValidationError(f"cycles must be >= 1, got {cycles}")
        self.events.append(
            "cycle.started",
            cycle=self.cycles_completed,
            trace_id=current_trace_id(),
            detail={"requested": int(cycles)},
        )
        if self.durable is not None:
            target = len(self.controller.history) + cycles
            self.durable.total_cycles = target
            self.durable.run_payload["cycles"] = target
            history = self.durable.run()
            new = history[-cycles:]
        else:
            new = self.controller.run(cycles)
        for report in new:
            self._record_cycle_events(report)
        self._fold_new_reports()
        return new

    def _record_cycle_events(self, report: CycleReport) -> None:
        """Append the audit events one finished cycle implies."""
        trace_id = report.trace_id
        self.events.append(
            "cycle.completed",
            cycle=report.cycle,
            trace_id=trace_id,
            detail={
                "action": report.action,
                "sla_ok": report.sla_ok,
                "gained_after": report.gained_after,
            },
        )
        if report.rungs:
            self.events.append(
                "cycle.degraded",
                cycle=report.cycle,
                trace_id=trace_id,
                detail={"rungs": list(report.rungs)},
            )
        if report.action == "rolled_back":
            self.events.append(
                "cycle.rolled_back",
                cycle=report.cycle,
                trace_id=trace_id,
                detail={"imbalance_after": report.imbalance_after},
            )
        if (
            report.machine_failures
            or report.failed_commands
            or report.command_retries
        ):
            self.events.append(
                "fault.injected",
                cycle=report.cycle,
                trace_id=trace_id,
                detail={
                    "machine_failures": len(report.machine_failures),
                    "failed_commands": report.failed_commands,
                    "command_retries": report.command_retries,
                },
            )

    def push_snapshot(self, edges: list) -> int:
        """Replace the collector's ground-truth traffic measurements.

        ``edges`` is a list of ``[service_a, service_b, qps]`` triples
        (tuple keys do not survive JSON, so the wire format is triples);
        the next cycle optimizes against the pushed traffic.  Replay
        tenants reject pushes — their traffic comes from the recorded
        stream.
        """
        collector: DataCollector = self.controller.collector
        if collector.stream is not None:
            raise ProblemValidationError(
                f"tenant {self.name!r} replays a recorded trace; its "
                "traffic cannot be overridden by snapshot pushes"
            )
        services = set(self.controller.state.problem.service_names())
        parsed: dict[tuple[str, str], float] = {}
        for entry in edges:
            try:
                a, b, qps = entry
                parsed[(str(a), str(b))] = float(qps)
            except (TypeError, ValueError) as exc:
                raise ProblemValidationError(
                    "snapshot entries must be [service_a, service_b, qps] "
                    f"triples, got {entry!r}"
                ) from exc
            for name in (str(a), str(b)):
                if name not in services:
                    raise ProblemValidationError(
                        f"snapshot references unknown service {name!r}"
                    )
        with self._lock:
            collector.qps = parsed
        return len(parsed)

    def checkpoint(self) -> None:
        """Write a final snapshot now (no-op for non-durable tenants)."""
        if self.durable is not None:
            self.durable.checkpoint()

    # ------------------------------------------------------------------
    def _arm_durable_hooks(self) -> None:
        """Persist the event log through the durable checkpoint payload."""
        durable = self.durable
        if durable is None:
            return
        durable.extra_state = lambda: {"events": self.events.state_payload()}
        durable.on_checkpoint = self._on_checkpoint

    def _on_checkpoint(self) -> None:
        self.events.append(
            "checkpoint.written",
            cycle=self.cycles_completed,
            trace_id=current_trace_id(),
        )

    def record_event(
        self,
        kind: str,
        *,
        cycle: int | None = None,
        trace_id: str | None = None,
        detail: dict | None = None,
    ) -> dict:
        """Append one audit event to the tenant's log (service plumbing)."""
        return self.events.append(
            kind, cycle=cycle, trace_id=trace_id, detail=detail
        )

    def events_since(self, since: int = 0) -> dict:
        """The ``GET .../events?since=N`` document."""
        return {
            "tenant": self.name,
            "events": self.events.since(since),
            "last_seq": self.events.last_seq,
            "first_seq": self.events.first_seq,
            "evicted": self.events.evicted,
        }

    def alerts_doc(self) -> dict:
        """The ``GET .../alerts`` document: active alerts + SLO status."""
        return {
            "tenant": self.name,
            "alerts": self.slo.alerts(),
            "slo": self.slo.status(),
        }

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The tenant's status document (``GET /v1/tenants/<name>``)."""
        problem = self.controller.state.problem
        last = self.last_report
        return tag_schema(
            {
                "name": self.name,
                "mode": self.spec.mode,
                "cycles_completed": self.cycles_completed,
                "num_services": problem.num_services,
                "num_machines": problem.num_machines,
                "schedule_seconds": self.spec.schedule_seconds,
                "durable": self.durable is not None,
                "checkpoint_dir": (
                    None if self.checkpoint_dir is None else str(self.checkpoint_dir)
                ),
                "faulted": self.spec.faults is not None,
                "gained_affinity": (
                    None if last is None else float(last.gained_after)
                ),
                "last_action": None if last is None else last.action,
                "health": self.hub.health(),
                "alerts_active": len(self.slo.alerts()),
                "events_logged": self.events.last_seq,
            }
        )

    # ------------------------------------------------------------------
    def _fold_new_reports(self) -> None:
        """Fold not-yet-counted reports into the tenant metrics registry.

        Per-tenant metrics are derived from the tenant's own report
        history rather than by swapping the process-global registry —
        the global registry is a process-wide singleton and cannot be
        re-pointed per worker thread without cross-tenant bleed.
        """
        with self._lock:
            history = self.controller.history
            folded_before = self._folded
            fresh = history[folded_before:]
            self._folded = len(history)
        durations = self.hub.durations()
        reg = self.registry
        for offset, report in enumerate(fresh):
            index = folded_before + offset
            duration = durations[index] if index < len(durations) else 0.0
            self.slo.observe(report, duration_seconds=duration)
            reg.counter("tenant.cycles.total").inc()
            reg.counter(f"tenant.cycles.{report.action}").inc()
            reg.counter("tenant.moved_containers").inc(report.moved_containers)
            reg.counter("tenant.failed_commands").inc(report.failed_commands)
            reg.counter("tenant.skipped_commands").inc(report.skipped_commands)
            reg.counter("tenant.command_retries").inc(report.command_retries)
            reg.counter("tenant.machine_failures").inc(
                len(report.machine_failures)
            )
            if not report.sla_ok:
                reg.counter("tenant.sla_violations").inc()
            reg.gauge("tenant.gained_affinity").set(report.gained_after)
            reg.gauge("tenant.imbalance").set(report.imbalance_after)
            reg.gauge("tenant.min_alive_fraction").set(report.min_alive_fraction)
        if fresh:
            for objective, rates in self.slo.burn_rates().items():
                reg.gauge(f"slo.{objective}.burn_rate_fast").set(rates["fast"])
                reg.gauge(f"slo.{objective}.burn_rate_slow").set(rates["slow"])
            reg.gauge("slo.alerts.active").set(len(self.slo.alerts()))
