"""Multi-tenant optimizer service: REST control plane over ``repro.api``.

The paper frames RASA as a per-cluster CronJob; a production deployment
runs *many* clusters.  This package is the long-running control plane that
manages N named clusters as independent tenants:

* :class:`~repro.service.app.OptimizerService` — the stdlib HTTP service
  (``/v1/tenants/...``): register/deregister a cluster (problem or event
  trace), push collector snapshots, trigger or cron-schedule optimization
  cycles, fetch migration plans and cycle reports, and scrape per-tenant
  ``/healthz`` / ``/metrics``.
* :class:`~repro.service.tenant.Tenant` — one cluster's control loop:
  its own :class:`~repro.cluster.cronjob.CronJobController`, collector,
  fault plan, degradation policy, telemetry hub, and (optionally) its own
  durable checkpoint directory, built through exactly the same wiring as
  :func:`repro.api.run_control_loop` so a tenant's cycle reports are
  bit-identical to the equivalent single-tenant run.
* :class:`~repro.service.pool.ControllerPool` — bounded worker set the
  per-tenant loops shard onto (consistent-hash tenant → slot); one
  tenant's cycles always run serialized on one worker, different tenants
  run concurrently.
* :class:`~repro.service.client.ServiceClient` — stdlib HTTP client
  mirroring the REST surface (the ``rasa tenant ...`` CLI rides on it).

Everything crossing the wire is a ``schema_version``-tagged payload (see
:mod:`repro.schemas`); the service speaks only versioned JSON.
"""

from repro.service.app import OptimizerService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.pool import ControllerPool
from repro.service.tenant import Tenant, TenantSpec

__all__ = [
    "ControllerPool",
    "OptimizerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Tenant",
    "TenantSpec",
]
