"""Stdlib HTTP client for the multi-tenant control plane.

:class:`ServiceClient` mirrors the REST surface of
:class:`~repro.service.app.OptimizerService` one method per endpoint, so
scripts and the ``rasa tenant ...`` CLI never hand-build URLs.  It is
``urllib.request`` only — the client must work in the same
no-new-dependencies environment the service does.

Every request carries a W3C ``traceparent`` header minted from the
client's own deterministic :class:`~repro.obs.context.TraceIdFactory`
(seeded by ``trace_seed``), so the trace id printed by the CLI is the
same one that shows up in the server's access log, the tenant's audit
events, and the cycle's span exports.  A freshly started service may not
be accepting connections yet; connection-refused errors are retried with
bounded exponential backoff (``connect_retries``/``connect_backoff``)
instead of making every caller hand-roll a sleep loop.

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status
and the server's JSON error document.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.obs.context import TraceIdFactory, normalize_trace_id
from repro.schemas import tag_schema


class ServiceError(RuntimeError):
    """A control-plane request failed (non-2xx response).

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
        payload: Parsed JSON error document, when the server sent one.
    """

    def __init__(self, message: str, *, status: int = 0,
                 payload: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServiceClient:
    """Typed access to one optimizer service.

    Args:
        base_url: The service root, e.g. ``http://127.0.0.1:8080``
            (``service.url`` from :func:`repro.api.start_service`).
        timeout: Per-request socket timeout in seconds.  Blocking
            triggers (``wait=True``) run full optimization cycles before
            responding, so give those a budget sized to the workload.
        trace_seed: Seed of the client's trace-id factory (each request
            sends a fresh ``traceparent`` minted from it).
        connect_retries: How many times a refused connection is retried
            before giving up (covers the startup race against a service
            that has not bound its port yet).  0 disables retrying.
        connect_backoff: Initial retry delay in seconds; doubles per
            attempt, capped at 1 second.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        trace_seed: int = 0,
        connect_retries: int = 0,
        connect_backoff: float = 0.05,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.ids = TraceIdFactory(seed=trace_seed, namespace="rasa-client")
        self.connect_retries = max(0, int(connect_retries))
        self.connect_backoff = float(connect_backoff)
        #: trace id of the most recent request (what the CLI prints).
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    def _open(self, request: urllib.request.Request) -> bytes:
        """``urlopen`` with bounded retry on connection-refused only.

        Refused connections are the startup race (server thread not yet
        bound); anything else — timeouts, resets mid-request, DNS — is
        not safely retryable for non-idempotent verbs and surfaces
        immediately.
        """
        attempts = 0
        delay = self.connect_backoff
        while True:
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return resp.read()
            except urllib.error.URLError as exc:
                refused = isinstance(exc.reason, ConnectionRefusedError)
                if not refused or attempts >= self.connect_retries:
                    raise
                attempts += 1
                time.sleep(min(delay, 1.0))
                delay = min(delay * 2.0, 1.0)

    def _request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        trace_id: str | None = None,
    ) -> Any:
        body = None
        context = (
            self.ids.new_context()
            if trace_id is None
            else self.ids.child_of_trace(trace_id)
        )
        self.last_trace_id = context.trace_id
        headers = {
            "Accept": "application/json",
            "traceparent": context.traceparent,
        }
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers,
            method=method,
        )
        try:
            raw = self._open(request)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                document = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                document = None
            message = (
                document.get("error") if isinstance(document, dict) else None
            ) or f"{method} {path} failed with HTTP {exc.code}"
            raise ServiceError(
                message, status=exc.code, payload=document
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc.reason}"
            ) from exc
        if not raw:
            return None
        try:
            return json.loads(raw)
        except ValueError:
            return raw.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Service level
    # ------------------------------------------------------------------
    def service_health(self) -> dict:
        """``GET /v1/healthz``."""
        return self._request("GET", "/v1/healthz")

    def service_metrics(self) -> str:
        """``GET /metrics`` (Prometheus text for the whole process)."""
        return self._request("GET", "/metrics")

    def list_tenants(self) -> list[dict]:
        """``GET /v1/tenants`` — every tenant's summary document."""
        return self._request("GET", "/v1/tenants")["tenants"]

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def register_tenant(self, spec: "dict") -> dict:
        """``POST /v1/tenants`` with a TenantSpec payload (or its dict).

        Accepts either a plain payload dict or anything with a
        ``to_dict`` method (a :class:`~repro.service.tenant.TenantSpec`).
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else tag_schema(spec)
        return self._request("POST", "/v1/tenants", payload)

    def deregister_tenant(self, name: str) -> dict:
        """``DELETE /v1/tenants/<name>``."""
        return self._request("DELETE", f"/v1/tenants/{name}")

    def tenant(self, name: str) -> dict:
        """``GET /v1/tenants/<name>`` — one tenant's summary."""
        return self._request("GET", f"/v1/tenants/{name}")

    # ------------------------------------------------------------------
    # Tenant operations
    # ------------------------------------------------------------------
    def trigger_cycles(
        self,
        name: str,
        *,
        cycles: int = 1,
        wait: bool = False,
        trace_id: "str | None" = None,
    ) -> dict:
        """``POST /v1/tenants/<name>/cycles`` — run more cycles.

        Returns the job document: 202-style (``status: "running"``) when
        ``wait`` is False, or the finished job with its cycle reports
        when ``wait`` is True.  ``trace_id`` pins the request (and thus
        the triggered cycles' spans and audit events) to a caller-chosen
        trace instead of a minted one.
        """
        return self._request(
            "POST",
            f"/v1/tenants/{name}/cycles",
            tag_schema({"cycles": cycles, "wait": bool(wait)}),
            trace_id=trace_id,
        )

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>`` — an async trigger's status."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def reports(self, name: str, *, since: int = 0) -> list[dict]:
        """``GET /v1/tenants/<name>/cycles?since=k`` — cycle reports."""
        document = self._request(
            "GET", f"/v1/tenants/{name}/cycles?since={since}"
        )
        return document["reports"]

    def plan(self, name: str) -> dict:
        """``GET /v1/tenants/<name>/plan`` — the latest migration plan."""
        return self._request("GET", f"/v1/tenants/{name}/plan")

    def push_snapshot(self, name: str, edges: list) -> dict:
        """``POST /v1/tenants/<name>/snapshots`` — push traffic triples."""
        return self._request(
            "POST",
            f"/v1/tenants/{name}/snapshots",
            tag_schema({"edges": edges}),
        )

    def set_schedule(self, name: str, schedule_seconds: "float | None") -> dict:
        """``POST /v1/tenants/<name>/schedule`` — set/clear cron cadence."""
        return self._request(
            "POST",
            f"/v1/tenants/{name}/schedule",
            tag_schema({"schedule_seconds": schedule_seconds}),
        )

    def health(self, name: str) -> dict:
        """``GET /v1/tenants/<name>/healthz`` — tenant health document.

        Unlike a raw probe, an SLA-violated tenant (HTTP 503) returns its
        health document here instead of raising, mirroring how the
        telemetry server's probe semantics are meant to be consumed.
        """
        try:
            return self._request("GET", f"/v1/tenants/{name}/healthz")
        except ServiceError as exc:
            if exc.status == 503 and isinstance(exc.payload, dict):
                return exc.payload
            raise

    def metrics(self, name: str) -> str:
        """``GET /v1/tenants/<name>/metrics`` (Prometheus text)."""
        return self._request("GET", f"/v1/tenants/{name}/metrics")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def events(self, name: str, *, since: int = 0) -> dict:
        """``GET /v1/tenants/<name>/events?since=k`` — the audit log."""
        return self._request(
            "GET", f"/v1/tenants/{name}/events?since={int(since)}"
        )

    def all_events(self) -> dict:
        """``GET /v1/events`` — merged audit log across all tenants."""
        return self._request("GET", "/v1/events")

    def alerts(self, name: str) -> dict:
        """``GET /v1/tenants/<name>/alerts`` — SLO status + alerts."""
        return self._request("GET", f"/v1/tenants/{name}/alerts")

    def all_alerts(self) -> dict:
        """``GET /v1/alerts`` — every tenant's active burn-rate alerts."""
        return self._request("GET", "/v1/alerts")

    def trace(self) -> dict:
        """``GET /v1/trace`` — the live Chrome trace-event document."""
        return self._request("GET", "/v1/trace")

    def trace_otlp(self) -> dict:
        """``GET /v1/trace/otlp`` — the live OTLP/JSON trace document."""
        return self._request("GET", "/v1/trace/otlp")
