"""Atomic file writes: temp file + rename, with fsync.

Every artifact the toolkit persists — cycle reports, benchmark points,
metrics/trace exports, trace files, checkpoints — goes through
:func:`atomic_write` so a crash mid-write can never leave a half-written
file behind: the data lands in a temporary sibling first, is flushed and
fsync'd, then atomically renamed over the destination (:func:`os.replace`
is atomic on POSIX when source and target share a filesystem, which a
same-directory temp file guarantees).

This module is dependency-free on purpose: it is imported by low-level
modules (``repro.obs``, ``repro.workloads.trace_io``) that the rest of
the durability package builds on, so it must not import them back.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def fsync_directory(path: str | Path) -> None:
    """Flush a directory entry so a just-renamed file survives power loss.

    Best-effort: directory fds are a POSIX notion, so failures (e.g. on
    platforms or filesystems that refuse ``open(dir)``) are swallowed —
    the rename itself already happened.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: str | Path, data: str | bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    Readers never observe a partial file: they see either the previous
    content or the complete new content.  The temporary file is created
    in the destination directory (rename is only atomic within one
    filesystem) and unlinked on any failure.

    Args:
        path: Destination file.
        data: Content to write; ``str`` is encoded as UTF-8.
        fsync: Flush file and directory to stable storage before
            returning.  Leave on for durability-critical artifacts; tests
            writing many throwaway files may turn it off for speed.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or Path(".")
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(path.parent or Path("."))


def atomic_write_json(
    path: str | Path,
    payload,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
    fsync: bool = True,
) -> None:
    """JSON-serialize ``payload`` and :func:`atomic_write` it to ``path``."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write(path, text + "\n", fsync=fsync)
