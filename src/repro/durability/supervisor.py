"""Process supervision: graceful shutdown and crash/hang-restarting runner.

Two cooperating pieces:

* :class:`GracefulShutdown` — installed inside ``rasa cron`` / ``rasa
  replay``.  The first SIGTERM/SIGINT only sets a flag; the durable loop
  notices it between cycles, finishes the in-flight cycle, writes a final
  checkpoint, flushes telemetry, and exits with :data:`EXIT_INTERRUPTED`.
  The handler un-installs itself after the first signal so a second
  signal interrupts hard (the checkpoint makes that safe too).
* :class:`Supervisor` — ``rasa cron --supervise``.  Runs the loop in a
  child process, watches for crashes (unclean exit codes) and hangs
  (checkpoint heartbeat older than ``hang_timeout``), restarts the child
  with bounded exponential backoff, and records restart bookkeeping in
  ``supervisor.json`` + metrics.  The child auto-resumes from the
  checkpoint directory, so every restart continues instead of restarting
  the run.
"""

from __future__ import annotations

import signal
import subprocess
import time
from dataclasses import dataclass

from repro.durability.checkpoint import CheckpointStore
from repro.obs import get_logger, get_metrics, kv

#: Exit code for a graceful, checkpointed shutdown on SIGTERM/SIGINT.
#: Distinct from 0 (complete), 1 (SLA violation), 2 (bench/soak failure).
EXIT_INTERRUPTED = 3


class GracefulShutdown:
    """Context manager turning SIGTERM/SIGINT into a cooperative flag.

    Usage::

        with GracefulShutdown() as shutdown:
            loop = build_durable_loop(..., shutdown=shutdown)
            loop.run()          # stops between cycles once requested
            if loop.interrupted:
                return EXIT_INTERRUPTED

    Signal handlers only work on the main thread; elsewhere this degrades
    to an inert flag the caller may still set programmatically.
    """

    def __init__(self) -> None:
        self.requested = False
        #: Set by the loop when the request actually cut a run short.
        self.interrupted = False
        self.signal_name: str | None = None
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "GracefulShutdown":
        self._previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not on the main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _handle(self, signum, frame) -> None:
        self.requested = True
        self.signal_name = signal.Signals(signum).name
        get_logger("durability.shutdown").info(
            "graceful shutdown requested %s", kv(signal=self.signal_name)
        )
        # One graceful chance: restore the previous handlers so a second
        # signal interrupts hard instead of being swallowed.
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass
        self._previous = {}


@dataclass
class SupervisorPolicy:
    """Restart/backoff/hang-detection knobs for :class:`Supervisor`.

    Attributes:
        max_restarts: Give up after this many restarts (the final exit
            code is the child's last).
        backoff_base: First restart delay in seconds.
        backoff_factor: Multiplier applied per successive restart.
        backoff_max: Ceiling on the restart delay.
        hang_timeout: Kill the child when the checkpoint heartbeat (WAL
            or snapshot mtime) is older than this many seconds; None
            disables hang detection.
        poll_interval: Seconds between child liveness checks.
    """

    max_restarts: int = 5
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    hang_timeout: float | None = None
    poll_interval: float = 0.2

    def backoff(self, restart_index: int) -> float:
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor**restart_index,
        )


class Supervisor:
    """Run a control-loop command in a child process and keep it alive.

    Args:
        argv: Child command line (e.g. ``[sys.executable, "-m",
            "repro.cli", "replay", ...]`` with supervisor flags removed).
        checkpoint_dir: The child's checkpoint directory — the heartbeat
            source for hang detection and home of ``supervisor.json``.
        policy: Restart/backoff/hang knobs.
        clean_exit_codes: Exit codes that end supervision (the run is
            over): complete, SLA-violation, graceful shutdown.
    """

    def __init__(
        self,
        argv: list[str],
        checkpoint_dir,
        *,
        policy: SupervisorPolicy | None = None,
        clean_exit_codes: tuple[int, ...] = (0, 1, EXIT_INTERRUPTED),
    ) -> None:
        self.argv = list(argv)
        self.store = CheckpointStore(checkpoint_dir)
        self.policy = policy or SupervisorPolicy()
        self.clean_exit_codes = clean_exit_codes
        self.restarts = 0
        self.logger = get_logger("durability.supervisor")
        self._child: subprocess.Popen | None = None

    # ------------------------------------------------------------------
    def _record(self, status: str, *, exit_code: int | None, reason: str) -> None:
        self.store.write_supervisor(
            {
                "status": status,
                "restarts": self.restarts,
                "max_restarts": self.policy.max_restarts,
                "last_exit_code": exit_code,
                "last_reason": reason,
                "argv": self.argv,
                "updated_at": time.time(),
            }
        )

    def _forward(self, signum, frame) -> None:
        if self._child is not None and self._child.poll() is None:
            self._child.send_signal(signum)

    def _run_child_once(self) -> tuple[int, str]:
        """One child lifetime -> (exit code, reason: exited|hung)."""
        started = time.time()
        self._child = subprocess.Popen(self.argv)
        try:
            while True:
                code = self._child.poll()
                if code is not None:
                    return code, "exited"
                if self.policy.hang_timeout is not None:
                    age = self.store.heartbeat_age()
                    # Before the child's first persisted record, measure
                    # from its start time instead of a stale mtime.
                    if age is None or age > time.time() - started:
                        age = time.time() - started
                    if age > self.policy.hang_timeout:
                        self.logger.warning(
                            "child hang detected %s",
                            kv(age=round(age, 2), timeout=self.policy.hang_timeout),
                        )
                        self._child.kill()
                        self._child.wait()
                        return -signal.SIGKILL, "hung"
                time.sleep(self.policy.poll_interval)
        finally:
            self._child = None

    def run(self) -> int:
        """Supervise until a clean exit or the restart budget is spent.

        Returns the child's final exit code.
        """
        metrics = get_metrics()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, self._forward)
            except ValueError:
                pass
        try:
            self._record("running", exit_code=None, reason="started")
            while True:
                code, reason = self._run_child_once()
                if reason == "exited" and code in self.clean_exit_codes:
                    self._record("done", exit_code=code, reason="clean exit")
                    self.logger.info(
                        "supervised run finished %s",
                        kv(exit_code=code, restarts=self.restarts),
                    )
                    return code
                if self.restarts >= self.policy.max_restarts:
                    self._record(
                        "gave-up", exit_code=code, reason=f"{reason}; budget spent"
                    )
                    self.logger.error(
                        "restart budget spent %s",
                        kv(exit_code=code, restarts=self.restarts),
                    )
                    return code
                delay = self.policy.backoff(self.restarts)
                self.restarts += 1
                metrics.counter("durability.supervisor.restarts").inc()
                if reason == "hung":
                    metrics.counter("durability.supervisor.hangs").inc()
                self._record("restarting", exit_code=code, reason=reason)
                self.logger.warning(
                    "restarting child %s",
                    kv(
                        exit_code=code,
                        reason=reason,
                        restart=self.restarts,
                        backoff_seconds=round(delay, 3),
                    ),
                )
                time.sleep(delay)
        finally:
            for signum, handler in previous.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, TypeError):
                    pass


def strip_supervisor_args(argv: list[str]) -> list[str]:
    """Remove supervisor-only flags from a CLI argv for the child process."""
    out: list[str] = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg == "--supervise":
            continue
        if arg in ("--max-restarts", "--hang-timeout"):
            skip = True
            continue
        if arg.startswith(("--max-restarts=", "--hang-timeout=")):
            continue
        out.append(arg)
    return out
