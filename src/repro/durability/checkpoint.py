"""Checkpoint directory layout: atomic snapshot + WAL tail + supervisor state.

A checkpoint directory holds the durable state of one control loop:

* ``snapshot.json`` — the latest compaction: run configuration, the
  serialized run *source* (event trace or problem), every completed
  cycle's report, and the live-state capture at compaction time.  Written
  atomically (temp file + rename) and format-versioned like trace v2.
* ``wal.jsonl`` — one CRC-guarded record per cycle completed since the
  snapshot (see :mod:`repro.durability.wal`).  Compaction absorbs the
  records into a fresh snapshot and truncates the log.
* ``supervisor.json`` — restart bookkeeping written by the
  :mod:`repro.durability.supervisor` (absent for unsupervised runs).

Crash windows are closed by ordering: the snapshot is renamed into place
*before* the WAL is truncated, so a crash in between leaves stale WAL
records for cycles the snapshot already covers — :meth:`CheckpointStore.load`
drops them (``cycle < cycles_completed``) and verifies the survivors form
a contiguous continuation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.durability.atomic import atomic_write_json
from repro.durability.wal import WALReplay, WriteAheadLog
from repro.exceptions import DurabilityError, WALCorruptionError
from repro.obs import get_metrics

#: Format version written into every checkpoint snapshot.
CHECKPOINT_FORMAT_VERSION = 1

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"
SUPERVISOR_FILE = "supervisor.json"


@dataclass
class CheckpointState:
    """Everything :meth:`CheckpointStore.load` recovered from disk.

    Attributes:
        snapshot: The parsed snapshot document (None when none exists).
        wal_records: Cycle records appended after the snapshot, stale
            pre-compaction leftovers already filtered out.
        truncated_records: Torn trailing WAL lines discarded by recovery.
        stale_records: WAL records dropped because the snapshot already
            covered their cycles (crash between snapshot and truncate).
    """

    snapshot: dict | None = None
    wal_records: list[dict] = field(default_factory=list)
    truncated_records: int = 0
    stale_records: int = 0

    @property
    def cycles_completed(self) -> int:
        """Completed cycles recoverable from snapshot + WAL tail."""
        base = int(self.snapshot["cycles_completed"]) if self.snapshot else 0
        return base + len(self.wal_records)


class CheckpointStore:
    """One control loop's durable home directory.

    Args:
        directory: Checkpoint directory; created if missing.
        fsync: Flush writes to stable storage (see :class:`WriteAheadLog`).
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.wal = WriteAheadLog(self.directory / WAL_FILE, fsync=fsync)

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_FILE

    @property
    def supervisor_path(self) -> Path:
        return self.directory / SUPERVISOR_FILE

    def exists(self) -> bool:
        """Whether any durable state (snapshot or WAL records) is present."""
        if self.snapshot_path.exists():
            return True
        return self.wal_path.exists() and self.wal_path.stat().st_size > 0

    # ------------------------------------------------------------------
    def append_cycle(self, record: dict) -> None:
        """Durably journal one committed cycle."""
        self.wal.append(record)

    def write_snapshot(self, payload: dict) -> None:
        """Compact: atomically write a snapshot, then truncate the WAL.

        The payload gains ``format_version``/``kind`` headers; the caller
        supplies ``run``/``source``/``cycles_completed``/``reports``/
        ``live`` (see :mod:`repro.durability.loop`).
        """
        document = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": "control_loop_checkpoint",
            **payload,
        }
        atomic_write_json(
            self.snapshot_path, document, sort_keys=True, fsync=self.fsync
        )
        self.wal.reset()
        get_metrics().counter("durability.checkpoint.compactions").inc()

    # ------------------------------------------------------------------
    def load(self) -> CheckpointState:
        """Recover snapshot + WAL tail, validating format and continuity.

        Raises:
            DurabilityError: On an unreadable or wrong-format snapshot.
            WALCorruptionError: On mid-log WAL damage or a gap in the
                surviving cycle sequence.
        """
        state = CheckpointState()
        if self.snapshot_path.exists():
            try:
                snapshot = json.loads(self.snapshot_path.read_text("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise DurabilityError(
                    f"checkpoint snapshot {self.snapshot_path} is not valid "
                    f"JSON: {exc}"
                ) from exc
            if not isinstance(snapshot, dict):
                raise DurabilityError("checkpoint snapshot must be an object")
            version = snapshot.get("format_version")
            if version != CHECKPOINT_FORMAT_VERSION:
                raise DurabilityError(
                    f"unsupported checkpoint format version {version!r} "
                    f"(expected {CHECKPOINT_FORMAT_VERSION})"
                )
            if snapshot.get("kind") != "control_loop_checkpoint":
                raise DurabilityError(
                    f"unexpected checkpoint kind {snapshot.get('kind')!r}"
                )
            state.snapshot = snapshot

        replay: WALReplay = self.wal.replay(repair=True)
        state.truncated_records = replay.truncated_records
        base = (
            int(state.snapshot["cycles_completed"]) if state.snapshot else 0
        )
        expected = base
        for record in replay.records:
            cycle = record.get("cycle")
            if not isinstance(cycle, int):
                raise WALCorruptionError(
                    f"WAL record without an integer cycle in {self.wal_path}"
                )
            if cycle < base:
                # Crash landed between snapshot rename and WAL truncate;
                # the snapshot already covers this cycle.
                state.stale_records += 1
                continue
            if cycle != expected:
                raise WALCorruptionError(
                    f"WAL cycle sequence gap in {self.wal_path}: expected "
                    f"cycle {expected}, found {cycle}"
                )
            state.wal_records.append(record)
            expected += 1
        return state

    # ------------------------------------------------------------------
    def heartbeat_age(self, now: float | None = None) -> float | None:
        """Seconds since the loop last persisted anything (None: never).

        The supervisor's hang detector: every committed cycle touches the
        WAL (or, at a compaction, the snapshot), so a stuck loop shows up
        as a growing heartbeat age.
        """
        latest = None
        for path in (self.wal_path, self.snapshot_path):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            latest = mtime if latest is None else max(latest, mtime)
        if latest is None:
            return None
        return (now if now is not None else time.time()) - latest

    def read_supervisor(self) -> dict | None:
        """The supervisor's restart bookkeeping, if any."""
        try:
            payload = json.loads(self.supervisor_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def write_supervisor(self, payload: dict) -> None:
        atomic_write_json(
            self.supervisor_path, payload, indent=1, fsync=self.fsync
        )
