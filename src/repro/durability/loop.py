"""Durable control loop: journal every cycle, compact, resume after kill -9.

Wraps a :class:`~repro.cluster.cronjob.CronJobController` so that each
completed cycle is durably journaled (committed :class:`CycleReport`,
post-apply placement by name, replay-cursor position, collector RNG and
last-snapshot state, fault-injector cycle key) and periodically compacted
into an atomic, self-contained snapshot.  After a crash at *any* point,
:func:`prepare_resume` rebuilds the world from the snapshot's embedded
source (event trace or problem), fast-forwards the replay cursor, restores
the live state, and continues the loop — producing a CycleReport sequence
bit-identical (modulo the process-local ``metrics`` field, the repo's
established determinism contract) to an uninterrupted run.

Why this restores exactly what it does: the solve phase is a pure function
of the collected problem (the partitioner re-seeds its RNG per call and
the schedulers are stateless), the fault injector re-keys per cycle from
``(plan.seed, cycle)``, and :class:`ReplayWorld`'s books are placement-
independent under event application — so resume determinism needs only
the placement, clock, churn tags, cursor position, collector state
(jitter RNG + last problem, which gates the stale-snapshot fault draw),
and the cycle index implied by the restored history length.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING

from repro.cluster.collector import DataCollector
from repro.cluster.cronjob import (
    IMPROVEMENT_GATE,
    CronJobController,
    CycleReport,
    facade_construction,
)
from repro.cluster.state import ClusterState
from repro.core.config import DegradationPolicy, RASAConfig, RetryPolicy
from repro.core.rasa import RASAScheduler
from repro.durability.checkpoint import CheckpointStore
from repro.exceptions import CheckpointDivergenceError, ClusterStateError, DurabilityError
from repro.faults import coerce_injector
from repro.obs import get_logger, get_metrics, kv
from repro.workloads.trace_io import problem_from_dict, problem_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.replay import EventStreamCursor
    from repro.obs.server import TelemetryHub

#: Default cycles between WAL compactions into a fresh snapshot.
DEFAULT_CHECKPOINT_EVERY = 16


# ----------------------------------------------------------------------
# Live-state capture / restore
# ----------------------------------------------------------------------
def capture_live(controller: CronJobController) -> dict:
    """Serialize everything resume needs beyond the run source + history."""
    state = controller.state
    live: dict = {
        "clock": float(state.clock),
        "placement": state.named_placement(),
        "unschedulable_until": {
            str(name): float(until)
            for name, until in state.unschedulable_until.items()
        },
        "cursor_position": (
            int(controller.stream.position)
            if controller.stream is not None
            else None
        ),
        "collector": controller.collector.state_payload(),
        "fault": (
            controller.faults.state_payload()
            if controller.faults is not None
            else None
        ),
    }
    return live


def _restore_live(controller: CronJobController, live: dict) -> None:
    """Apply a captured live state to a freshly rebuilt world.

    Raises:
        CheckpointDivergenceError: When the capture no longer matches the
            rebuilt cluster structure.
    """
    state = controller.state
    try:
        if controller.stream is not None:
            position = live.get("cursor_position")
            if position is None:
                raise ClusterStateError(
                    "replay checkpoint is missing the cursor position"
                )
            controller.stream.seek(int(position))
        state.restore_named(live["placement"])
        target_clock = float(live["clock"])
        state.advance(target_clock - state.clock)
        state.unschedulable_until = {
            str(name): float(until)
            for name, until in dict(live["unschedulable_until"]).items()
        }
        controller.collector.restore_state(live["collector"])
        if controller.faults is not None and live.get("fault") is not None:
            controller.faults.restore_state(live["fault"])
    except (ClusterStateError, KeyError, TypeError, ValueError) as exc:
        raise CheckpointDivergenceError(
            f"checkpoint does not match the rebuilt cluster: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Run / source payloads (what makes a snapshot self-contained)
# ----------------------------------------------------------------------
def _build_run_payload(
    controller: CronJobController,
    *,
    mode: str,
    total_cycles: int,
    seed: int,
    traffic_jitter_sigma: float,
    checkpoint_every: int,
) -> dict:
    return {
        "mode": mode,
        "cycles": int(total_cycles),
        "interval_seconds": float(controller.interval_seconds),
        "time_limit": controller.time_limit,
        "improvement_gate": float(controller.improvement_gate),
        "sla_floor": float(controller.sla_floor),
        "rollback_imbalance": controller.rollback_imbalance,
        "seed": int(seed),
        "traffic_jitter_sigma": float(traffic_jitter_sigma),
        "degradation": asdict(controller.degradation),
        "retry": asdict(controller.retry),
        "fault_plan": (
            controller.faults.plan.to_dict()
            if controller.faults is not None
            else None
        ),
        "config": asdict(controller.rasa.config),
        "checkpoint_every": int(checkpoint_every),
    }


def _build_source_payload(controller: CronJobController) -> dict:
    if controller.stream is not None:
        trace = controller.stream.trace
        return {
            "trace": {
                "name": trace.name,
                "seed": int(trace.seed),
                "interval_seconds": float(trace.interval_seconds),
                "description": trace.description,
                "base": problem_to_dict(trace.base),
                "events": [event.to_dict() for event in trace.events],
            }
        }
    return {"problem": problem_to_dict(controller.state.problem)}


def _rebuild_world(
    run: dict, source: dict
) -> tuple[ClusterState, DataCollector, "EventStreamCursor | None"]:
    """Reconstruct a fresh world from a snapshot's run + source payloads."""
    if run["mode"] == "replay":
        from repro.cluster.replay import EventTrace, event_from_dict

        payload = source["trace"]
        trace = EventTrace(
            base=problem_from_dict(payload["base"]),
            events=[event_from_dict(e) for e in payload.get("events", [])],
            name=str(payload.get("name", "trace")),
            seed=int(payload.get("seed", 0)),
            interval_seconds=float(payload.get("interval_seconds", 1800.0)),
            description=str(payload.get("description", "")),
        )
        cursor = trace.cursor()
        collector = DataCollector(
            stream=cursor,
            traffic_jitter_sigma=run["traffic_jitter_sigma"],
            seed=run["seed"],
        )
        return cursor.state, collector, cursor
    problem = problem_from_dict(source["problem"])
    state = ClusterState(problem)
    collector = DataCollector(
        dict(problem.affinity.items()),
        traffic_jitter_sigma=run["traffic_jitter_sigma"],
        seed=run["seed"],
    )
    return state, collector, None


def _build_controller(
    run: dict,
    state: ClusterState,
    collector: DataCollector,
    cursor: "EventStreamCursor | None",
    telemetry: "TelemetryHub | None",
    history: list[CycleReport],
) -> CronJobController:
    with facade_construction():
        return CronJobController(
            state=state,
            collector=collector,
            rasa=RASAScheduler(config=RASAConfig(**run["config"])),
            interval_seconds=float(run["interval_seconds"]),
            time_limit=run["time_limit"],
            improvement_gate=float(
                run.get("improvement_gate", IMPROVEMENT_GATE)
            ),
            rollback_imbalance=run.get("rollback_imbalance"),
            sla_floor=float(run["sla_floor"]),
            faults=coerce_injector(run.get("fault_plan")),
            degradation=DegradationPolicy(**run["degradation"]),
            retry=RetryPolicy(**run["retry"]),
            telemetry=telemetry,
            stream=cursor,
            history=history,
        )


# ----------------------------------------------------------------------
# The durable loop driver
# ----------------------------------------------------------------------
class DurableControlLoop:
    """Drives a controller to a target cycle count with WAL + checkpoints.

    Built by :func:`build_durable_loop` (fresh runs) or
    :func:`prepare_resume` (recovery); :meth:`run` then journals each
    committed cycle, compacts every ``checkpoint_every`` cycles, and
    honors a :class:`~repro.durability.supervisor.GracefulShutdown` by
    finishing the in-flight cycle and writing a final checkpoint.
    """

    def __init__(
        self,
        *,
        controller: CronJobController,
        store: CheckpointStore,
        run_payload: dict,
        source_payload: dict,
        total_cycles: int,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        shutdown=None,
    ) -> None:
        self.controller = controller
        self.store = store
        self.run_payload = run_payload
        self.source_payload = source_payload
        self.total_cycles = int(total_cycles)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.shutdown = shutdown
        #: True when a shutdown request stopped the loop before the target.
        self.interrupted = False
        #: Cycles restored from the checkpoint (0 for a fresh run).
        self.resumed_cycles = 0
        #: True when resume fell back to a guarded cold start.
        self.cold_start = False
        #: Torn WAL records truncated while loading the checkpoint.
        self.truncated_records = 0
        #: Optional callable returning an owner-defined dict persisted
        #: under the snapshot's ``extra`` key (the service stores each
        #: tenant's audit/event log here so it survives restarts).
        self.extra_state = None
        #: The ``extra`` dict loaded from the resumed checkpoint (empty
        #: for fresh runs); owners read it back after
        #: :func:`prepare_resume`.
        self.extra_payload: dict = {}
        #: Optional callback fired after every snapshot write (the
        #: service appends a ``checkpoint.written`` audit event from it).
        self.on_checkpoint = None
        self._since_snapshot = 0

    # ------------------------------------------------------------------
    def _snapshot_payload(self) -> dict:
        payload = {
            "run": self.run_payload,
            "source": self.source_payload,
            "cycles_completed": len(self.controller.history),
            "reports": [r.to_dict() for r in self.controller.history],
            "live": capture_live(self.controller),
        }
        if self.extra_state is not None:
            payload["extra"] = self.extra_state()
        elif self.extra_payload:
            payload["extra"] = self.extra_payload
        return payload

    def checkpoint(self) -> None:
        """Compact the journal into a fresh snapshot now."""
        self.store.write_snapshot(self._snapshot_payload())
        self._since_snapshot = 0
        if self.on_checkpoint is not None:
            self.on_checkpoint()

    def _commit_cycle(self, report: CycleReport) -> None:
        record = {
            "kind": "cycle",
            "cycle": report.cycle,
            "report": report.to_dict(),
            "live": capture_live(self.controller),
        }
        self.store.append_cycle(record)
        self._since_snapshot += 1
        if self._since_snapshot >= self.checkpoint_every:
            self.checkpoint()

    def _should_stop(self) -> bool:
        return self.shutdown is not None and self.shutdown.requested

    def run(self) -> list[CycleReport]:
        """Run to the target cycle count (or a graceful-shutdown request).

        Returns the full report history — restored cycles included — so a
        resumed run hands back the same list an uninterrupted one would.
        """
        # The initial snapshot makes cycle 0 recoverable and, on resume,
        # immediately absorbs the recovered WAL tail.
        self.checkpoint()
        remaining = self.total_cycles - len(self.controller.history)
        if remaining > 0:
            self.controller.run(
                remaining,
                on_cycle=self._commit_cycle,
                should_stop=self._should_stop,
            )
        self.interrupted = (
            self._should_stop()
            and len(self.controller.history) < self.total_cycles
        )
        if self.shutdown is not None and self.interrupted:
            self.shutdown.interrupted = True
        if self._since_snapshot:
            self.checkpoint()
        return list(self.controller.history)


def build_durable_loop(
    controller: CronJobController,
    *,
    checkpoint_dir,
    total_cycles: int,
    mode: str,
    seed: int = 0,
    traffic_jitter_sigma: float = 0.0,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    shutdown=None,
) -> DurableControlLoop:
    """Wrap a freshly built controller with WAL + checkpoint persistence."""
    store = CheckpointStore(checkpoint_dir)
    run_payload = _build_run_payload(
        controller,
        mode=mode,
        total_cycles=total_cycles,
        seed=seed,
        traffic_jitter_sigma=traffic_jitter_sigma,
        checkpoint_every=checkpoint_every,
    )
    source_payload = _build_source_payload(controller)
    return DurableControlLoop(
        controller=controller,
        store=store,
        run_payload=run_payload,
        source_payload=source_payload,
        total_cycles=total_cycles,
        checkpoint_every=checkpoint_every,
        shutdown=shutdown,
    )


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------
def prepare_resume(
    checkpoint_dir,
    *,
    cycles: int | None = None,
    allow_cold_start: bool = False,
    checkpoint_every: int | None = None,
    shutdown=None,
    telemetry: "TelemetryHub | None" = None,
) -> DurableControlLoop:
    """Rebuild a durable loop from a checkpoint directory.

    Replays snapshot + WAL tail, reconstructs the world from the
    snapshot's embedded source, fast-forwards the replay cursor, restores
    placement/clock/tags/collector/injector state, and returns a loop
    whose :meth:`~DurableControlLoop.run` continues exactly where the
    crashed process stopped.

    Args:
        checkpoint_dir: Directory a previous durable run wrote.
        cycles: New target cycle count; None keeps the recorded target.
        allow_cold_start: On checkpoint divergence, discard the saved
            progress and restart from cycle 0 instead of raising.
        checkpoint_every: Override the recorded compaction cadence.
        shutdown: Optional :class:`GracefulShutdown` to honor.
        telemetry: Optional hub; restored reports are republished to it
            and its ``/healthz`` payload gains the recovery status.

    Raises:
        DurabilityError: When the directory holds no usable checkpoint.
        WALCorruptionError: On unrecoverable (mid-log) WAL damage.
        CheckpointDivergenceError: When the saved state no longer matches
            the rebuilt cluster and ``allow_cold_start`` is False.
    """
    logger = get_logger("durability.resume")
    metrics = get_metrics()
    store = CheckpointStore(checkpoint_dir)
    checkpoint = store.load()
    if checkpoint.snapshot is None:
        raise DurabilityError(
            f"no checkpoint snapshot under {store.directory} "
            f"(nothing to resume)"
        )
    run = dict(checkpoint.snapshot["run"])
    source = checkpoint.snapshot["source"]
    total = int(cycles) if cycles is not None else int(run["cycles"])
    run["cycles"] = total
    if checkpoint_every is not None:
        run["checkpoint_every"] = int(checkpoint_every)

    report_payloads = list(checkpoint.snapshot.get("reports", []))
    report_payloads += [record["report"] for record in checkpoint.wal_records]
    live = (
        checkpoint.wal_records[-1]["live"]
        if checkpoint.wal_records
        else checkpoint.snapshot.get("live")
    )

    history = [CycleReport.from_dict(p) for p in report_payloads]
    state, collector, cursor = _rebuild_world(run, source)
    controller = _build_controller(
        run, state, collector, cursor, telemetry, history
    )
    cold = False
    try:
        if live is not None:
            _restore_live(controller, live)
    except CheckpointDivergenceError as exc:
        if not allow_cold_start:
            raise
        logger.warning(
            "checkpoint diverged; cold start %s",
            kv(directory=str(store.directory), error=str(exc)),
        )
        metrics.counter("durability.resume.cold_starts").inc()
        cold = True
        state, collector, cursor = _rebuild_world(run, source)
        controller = _build_controller(
            run, state, collector, cursor, telemetry, []
        )

    resumed = len(controller.history)
    metrics.counter("durability.resume.count").inc()
    metrics.gauge("durability.resume.cycle").set(resumed)
    logger.info(
        "resume %s",
        kv(
            directory=str(store.directory),
            resumed_cycles=resumed,
            target_cycles=total,
            wal_records=len(checkpoint.wal_records),
            truncated_records=checkpoint.truncated_records,
            cold_start=cold,
        ),
    )
    # Counters/gauges survive the restart via the last report's snapshot
    # (histograms restart empty — their reservoirs are process-local).
    if controller.history:
        last = controller.history[-1].metrics
        metrics.merge(
            {
                "counters": dict(last.get("counters", {})),
                "gauges": dict(last.get("gauges", {})),
            }
        )
    if telemetry is not None:
        for report in controller.history:
            telemetry.publish_cycle(report)
        telemetry.set_recovery(
            {
                "resumed": True,
                "cold_start": cold,
                "resumed_cycles": resumed,
                "target_cycles": total,
                "wal_records": len(checkpoint.wal_records),
                "truncated_records": checkpoint.truncated_records,
                "supervisor": store.read_supervisor(),
            }
        )
    loop = DurableControlLoop(
        controller=controller,
        store=store,
        run_payload=run,
        source_payload=source,
        total_cycles=total,
        checkpoint_every=int(
            run.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)
        ),
        shutdown=shutdown,
    )
    loop.resumed_cycles = resumed
    loop.cold_start = cold
    loop.truncated_records = checkpoint.truncated_records
    if not cold:
        loop.extra_payload = dict(checkpoint.snapshot.get("extra") or {})
    return loop
