"""CRC-guarded, fsync'd JSONL write-ahead log for the control loop.

One line per committed control-loop cycle.  Each line is a canonical-JSON
envelope ``{"crc32": <crc>, "payload": {...}}`` where the CRC covers the
canonical encoding of the payload alone, so any torn or bit-flipped
record is detected on replay.

Recovery semantics (the contract ``tests/test_durability.py`` pins down):

* A bad record at the **tail** of the log — a torn final line from a
  crash mid-append, or trailing garbage — is recovered by physically
  truncating the file back to the last good record.  This is the normal
  kill -9 case and is logged + counted, never silently accepted.
* A bad record in the **middle** of the log (valid records follow it)
  means real corruption, not a torn write; replay raises
  :class:`~repro.exceptions.WALCorruptionError` instead of guessing.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import WALCorruptionError
from repro.obs import get_logger, get_metrics, kv


def _canonical(payload: dict) -> str:
    """Canonical JSON encoding (matches the trace-v2 byte-stability idiom)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc(payload: dict) -> int:
    return zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF


@dataclass
class WALReplay:
    """Result of replaying a write-ahead log from disk.

    Attributes:
        records: The surviving record payloads, in append order.
        truncated_records: Bad trailing lines discarded during recovery
            (0 for a clean log).
        truncated_bytes: Bytes cut from the file by that recovery.
    """

    records: list[dict] = field(default_factory=list)
    truncated_records: int = 0
    truncated_bytes: int = 0


class WriteAheadLog:
    """Append-only JSONL journal with per-record CRC and fsync.

    Args:
        path: The log file; created on first append.
        fsync: Flush each appended record to stable storage.  The whole
            point of a WAL — leave on outside of throwaway tests.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None

    # ------------------------------------------------------------------
    def append(self, payload: dict) -> None:
        """Durably append one record; returns after it is on disk."""
        line = _canonical({"crc32": _crc(payload), "payload": payload})
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(line.encode("utf-8") + b"\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        get_metrics().counter("durability.wal.appends").inc()

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self) -> None:
        """Truncate the log to empty (records absorbed into a snapshot)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def replay(self, *, repair: bool = True) -> WALReplay:
        """Parse the log, recovering from a torn tail.

        Args:
            repair: Physically truncate the file back to the last good
                record when the tail is torn (the resume path wants this);
                False only reports what would be cut.

        Raises:
            WALCorruptionError: On a bad record that is *followed* by
                valid records — mid-log damage truncation cannot fix.
        """
        result = WALReplay()
        if not self.path.exists():
            return result
        self.close()
        raw = self.path.read_bytes()
        offset = 0
        bad_offset: int | None = None
        bad_reason = ""
        bad_lines = 0
        for line in raw.split(b"\n"):
            line_start = offset
            offset += len(line) + 1
            if not line.strip():
                continue
            record, reason = self._parse(line)
            if record is None:
                if bad_offset is None:
                    bad_offset = line_start
                    bad_reason = reason
                bad_lines += 1
                continue
            if bad_offset is not None:
                raise WALCorruptionError(
                    f"corrupt record mid-log at byte {bad_offset} of "
                    f"{self.path} ({bad_reason}) with valid records after "
                    f"it; refusing to guess — restore from a snapshot"
                )
            result.records.append(record)
        if bad_offset is not None:
            result.truncated_records = bad_lines
            result.truncated_bytes = len(raw) - bad_offset
            get_logger("durability.wal").warning(
                "torn WAL tail truncated %s",
                kv(
                    path=str(self.path),
                    records=bad_lines,
                    bytes=result.truncated_bytes,
                    reason=bad_reason,
                ),
            )
            get_metrics().counter("durability.wal.truncated_records").inc(bad_lines)
            if repair:
                with open(self.path, "r+b") as handle:
                    handle.truncate(bad_offset)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
        return result

    @staticmethod
    def _parse(line: bytes) -> tuple[dict | None, str]:
        """One envelope line -> (payload, "") or (None, reason)."""
        try:
            envelope = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return None, f"not valid JSON: {exc}"
        if not isinstance(envelope, dict) or "payload" not in envelope:
            return None, "not a crc32/payload envelope"
        payload = envelope["payload"]
        if not isinstance(payload, dict):
            return None, "payload is not an object"
        if envelope.get("crc32") != _crc(payload):
            return None, "crc32 mismatch"
        return payload, ""
