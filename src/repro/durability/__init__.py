"""Durable control-loop state: atomic writes, WAL, checkpoints, supervision.

Only the dependency-free :mod:`~repro.durability.atomic` helpers are
imported eagerly — low-level modules (``repro.obs``,
``repro.workloads.trace_io``) import them for atomic artifact writes, and
the heavier durability modules import those packages back.  Everything
else resolves lazily through :func:`__getattr__` (PEP 562) to keep the
import graph acyclic.
"""

from __future__ import annotations

from repro.durability.atomic import atomic_write, atomic_write_json, fsync_directory

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "fsync_directory",
    "WriteAheadLog",
    "WALReplay",
    "CheckpointStore",
    "CheckpointState",
    "CHECKPOINT_FORMAT_VERSION",
    "DurableControlLoop",
    "build_durable_loop",
    "prepare_resume",
    "capture_live",
    "DEFAULT_CHECKPOINT_EVERY",
    "GracefulShutdown",
    "Supervisor",
    "SupervisorPolicy",
    "strip_supervisor_args",
    "EXIT_INTERRUPTED",
]

_LAZY = {
    "WriteAheadLog": "repro.durability.wal",
    "WALReplay": "repro.durability.wal",
    "CheckpointStore": "repro.durability.checkpoint",
    "CheckpointState": "repro.durability.checkpoint",
    "CHECKPOINT_FORMAT_VERSION": "repro.durability.checkpoint",
    "DurableControlLoop": "repro.durability.loop",
    "build_durable_loop": "repro.durability.loop",
    "prepare_resume": "repro.durability.loop",
    "capture_live": "repro.durability.loop",
    "DEFAULT_CHECKPOINT_EVERY": "repro.durability.loop",
    "GracefulShutdown": "repro.durability.supervisor",
    "Supervisor": "repro.durability.supervisor",
    "SupervisorPolicy": "repro.durability.supervisor",
    "strip_supervisor_args": "repro.durability.supervisor",
    "EXIT_INTERRUPTED": "repro.durability.supervisor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
