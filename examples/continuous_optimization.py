"""Continuous cluster optimization with the CronJob control loop.

Simulates the paper's production deployment (Section III): a cluster starts
from an affinity-oblivious placement; the half-hourly CronJob collects
traffic metrics, runs RASA, gates on a 3 % improvement (dry-run churn
control), and reallocates containers through SLA-safe migration plans.
After the loop converges, the IPC-vs-RPC network model reports the latency
and error-rate improvements the optimization bought.

Run with: ``python examples/continuous_optimization.py``
"""

from __future__ import annotations

from repro.cluster import (
    ClusterState,
    CronJobController,
    DataCollector,
    NetworkSimulator,
    relative_improvement,
)
from repro.core import Assignment, RASAScheduler
from repro.workloads import ClusterSpec, generate_cluster


def main() -> None:
    cluster = generate_cluster(
        ClusterSpec(
            name="prod-sim",
            num_services=80,
            num_containers=400,
            num_machines=16,
            affinity_beta=2.0,
            seed=20,
        )
    )
    problem = cluster.problem
    baseline = Assignment(problem, problem.current_assignment)
    print(f"cluster: {problem}")
    print(f"initial gained affinity: {baseline.gained_affinity(normalized=True):.2%}")

    state = ClusterState(problem)
    controller = CronJobController(
        state=state,
        collector=DataCollector(cluster.qps, traffic_jitter_sigma=0.05),
        rasa=RASAScheduler(),
        interval_seconds=1800.0,
        time_limit=10.0,
    )

    print("\nrunning 6 half-hourly CronJob cycles:")
    for report in controller.run(cycles=6):
        print(
            f"  cycle {report.cycle}: {report.action:11s} "
            f"gained {report.gained_before:.2%} -> {report.gained_after:.2%} "
            f"moved={report.moved_containers}"
        )

    optimized = state.assignment()
    executed = [r for r in controller.history if r.action == "executed"]
    print(f"\nexecutions: {len(executed)} of {len(controller.history)} cycles")
    print(f"final gained affinity: {optimized.gained_affinity(normalized=True):.2%}")

    # What did collocation buy in network terms?
    simulator = NetworkSimulator(seed=0)
    without = simulator.report("without_rasa", baseline, cluster.qps, num_windows=48)
    with_rasa = simulator.report("with_rasa", optimized, cluster.qps, num_windows=48)
    latency_gain = relative_improvement(
        float(without.weighted_latency_ms.mean()),
        float(with_rasa.weighted_latency_ms.mean()),
    )
    error_gain = relative_improvement(
        float(without.weighted_error_rate.mean()),
        float(with_rasa.weighted_error_rate.mean()),
    )
    print(f"weighted end-to-end latency improvement: {latency_gain:.2%}")
    print(f"weighted request error-rate improvement: {error_gain:.2%}")


if __name__ == "__main__":
    main()
