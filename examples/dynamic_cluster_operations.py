"""Closed-loop operations on a dynamic cluster.

Demonstrates why the paper runs RASA *continuously* (Section III): a
cluster under churn — autoscaling, a machine drain, traffic shifts —
gradually loses gained affinity unless the half-hourly CronJob keeps
re-optimizing.  The script runs the same event schedule twice (with and
without the optimizer loop) and prints the gained-affinity time series
side by side.

Run with: ``python examples/dynamic_cluster_operations.py``
"""

from __future__ import annotations

from repro.cluster import (
    DynamicSimulation,
    EventSchedule,
    MachineDrainEvent,
    ScaleEvent,
    TrafficShiftEvent,
    make_world,
)
from repro.workloads import ClusterSpec, generate_cluster


def build_schedule(problem, qps) -> EventSchedule:
    """A day of typical churn: rollout scale-up, hot pair, maintenance."""
    busiest = problem.affinity.services_by_total_affinity()[0][0]
    busiest_demand = problem.services[problem.service_index(busiest)].demand
    pairs = sorted(qps, key=qps.get, reverse=True)
    loads = problem.current_assignment.sum(axis=0)
    busy_machine = problem.machines[int(loads.argmax())].name
    return EventSchedule(
        [
            ScaleEvent(at_seconds=1800 * 2, service=busiest,
                       new_demand=busiest_demand + 6),
            TrafficShiftEvent(at_seconds=1800 * 3, pair=pairs[1], factor=4.0),
            MachineDrainEvent(at_seconds=1800 * 4, machine=busy_machine),
            TrafficShiftEvent(at_seconds=1800 * 6, pair=pairs[0], factor=0.3),
        ]
    )


def run_scenario(problem, qps, optimize: bool, ticks: int = 8):
    world = make_world(problem, qps)
    if not optimize:
        # Give the static scenario one up-front optimization, then hands-off.
        DynamicSimulation(world, EventSchedule(), optimize=True, time_limit=8).run(1)
    simulation = DynamicSimulation(
        world, build_schedule(problem, qps), optimize=optimize, time_limit=8
    )
    return simulation.run(ticks)


def main() -> None:
    cluster = generate_cluster(
        ClusterSpec(
            name="dynamic-demo",
            num_services=60,
            num_containers=280,
            num_machines=12,
            affinity_beta=2.0,
            seed=33,
        )
    )
    problem = cluster.problem
    print(f"cluster: {problem}\n")

    continuous = run_scenario(problem, cluster.qps, optimize=True)
    static = run_scenario(problem, cluster.qps, optimize=False)

    print(f"{'tick':>4s} {'time':>6s} {'continuous':>11s} {'once':>7s}  events / cron action")
    for i, (tick_on, tick_off) in enumerate(zip(continuous, static)):
        note = "; ".join(tick_on.events) or tick_on.cron_action
        print(
            f"{i:>4d} {tick_on.at_seconds/3600:>5.1f}h "
            f"{tick_on.gained_affinity:>11.3f} {tick_off.gained_affinity:>7.3f}  {note}"
        )

    moved = sum(t.moved_containers for t in continuous)
    print(
        f"\ncontinuous loop moved {moved} containers across "
        f"{sum(1 for t in continuous if t.cron_action == 'executed')} executions; "
        f"final gained affinity {continuous[-1].gained_affinity:.3f} vs "
        f"{static[-1].gained_affinity:.3f} without the loop"
    )


if __name__ == "__main__":
    main()
