"""Train the GCN algorithm-selection classifier (paper Section IV-D).

Reproduces the paper's training pipeline end to end:

1. sample subproblems from the T1–T4 training clusters (distinct from the
   M1–M4 evaluation clusters);
2. label each by racing column generation against MIP under a time cap;
3. train the GCN (and the MLP ablation) on the labeled feature graphs;
4. compare all selector policies on held-out subproblems from M3.

Run with: ``python examples/train_algorithm_selector.py``
(labeling races solvers, so expect a couple of minutes.)
"""

from __future__ import annotations

from repro.selection import (
    FixedSelector,
    GCNSelector,
    HeuristicSelector,
    MLPSelector,
    label_subproblem,
    sample_subproblems,
    selection_accuracy,
)
from repro.workloads import load_cluster, training_clusters


def main() -> None:
    print("sampling and labeling training subproblems from T1-T4...")
    train_subs = sample_subproblems(training_clusters(), per_cluster=8, seed=0)
    train_examples = [label_subproblem(s, time_limit=2.0) for s in train_subs]
    counts = {
        label: sum(e.label == label for e in train_examples) for label in ("cg", "mip")
    }
    print(f"  {len(train_examples)} examples, label counts: {counts}")

    print("training classifiers...")
    gcn = GCNSelector.train(train_examples, epochs=200, seed=0)
    mlp = MLPSelector.train(train_examples, epochs=250, seed=0)

    print("labeling held-out subproblems from M1/M3...")
    test_subs = sample_subproblems([load_cluster("M3"), load_cluster("M1")], per_cluster=8, seed=1)
    test_examples = [label_subproblem(s, time_limit=2.0) for s in test_subs]

    selectors = [
        gcn,
        mlp,
        HeuristicSelector(),
        FixedSelector("cg"),
        FixedSelector("mip"),
    ]
    print("\nselector accuracy (train / held-out):")
    for selector in selectors:
        train_acc = selection_accuracy(selector, train_examples, train_subs)
        test_acc = selection_accuracy(selector, test_examples, test_subs)
        print(f"  {selector.name:10s} {train_acc:.2%} / {test_acc:.2%}")

    # Persist the GCN for reuse (e.g. by the Fig. 8 benchmark).
    gcn.model.save("trained_gcn.npz")
    print("\nsaved GCN weights to trained_gcn.npz")


if __name__ == "__main__":
    main()
