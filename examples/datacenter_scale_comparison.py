"""Algorithm shoot-out on the scaled M1–M4 evaluation clusters.

Reproduces the shape of the paper's Fig. 9 interactively: runs ORIGINAL,
K8s+, POP, APPLSCI19, and RASA on each registered dataset under a common
time budget and prints the normalized gained affinity per cluster plus the
relative improvements the paper headlines.

Run with: ``python examples/datacenter_scale_comparison.py``
"""

from __future__ import annotations

import time

from repro.baselines import (
    ApplSci19Algorithm,
    K8sPlusAlgorithm,
    OriginalAlgorithm,
    POPAlgorithm,
)
from repro.core import RASAScheduler
from repro.workloads import EVALUATION_SPECS, load_cluster

TIME_LIMIT = 10.0


def main() -> None:
    baselines = [
        OriginalAlgorithm(),
        K8sPlusAlgorithm(),
        POPAlgorithm(),
        ApplSci19Algorithm(),
    ]
    names = [b.name for b in baselines] + ["rasa"]
    print(f"time budget per algorithm: {TIME_LIMIT:.0f}s")
    header = "cluster " + "".join(f"{n:>12s}" for n in names)
    print(header)
    print("-" * len(header))

    totals: dict[str, list[float]] = {n: [] for n in names}
    for cluster_name in sorted(EVALUATION_SPECS):
        problem = load_cluster(cluster_name).problem
        total_affinity = problem.affinity.total_affinity
        row = []
        for baseline in baselines:
            result = baseline.solve(problem, time_limit=TIME_LIMIT)
            gained = result.objective / total_affinity
            totals[baseline.name].append(gained)
            row.append(gained)
        start = time.monotonic()
        rasa = RASAScheduler().schedule(problem, time_limit=TIME_LIMIT)
        elapsed = time.monotonic() - start
        totals["rasa"].append(rasa.gained_affinity)
        row.append(rasa.gained_affinity)
        cells = "".join(f"{value:12.3f}" for value in row)
        print(f"{cluster_name:7s} {cells}   (rasa took {elapsed:.1f}s)")

    print("\naverage improvement of RASA over each baseline:")
    rasa_avg = sum(totals["rasa"]) / len(totals["rasa"])
    for name in names[:-1]:
        base_avg = sum(totals[name]) / len(totals[name])
        if base_avg > 0:
            print(f"  vs {name:10s} {(rasa_avg - base_avg) / base_avg:+.2%}")


if __name__ == "__main__":
    main()
