"""Quickstart: define a small cluster, optimize it with RASA, migrate safely.

Walks the full public API in under a minute:

1. model services, machines, affinity, and constraints;
2. run the three-phase RASA scheduler;
3. compute and validate an executable migration plan.

Run with: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    AntiAffinityRule,
    Assignment,
    Machine,
    MigrationExecutor,
    MigrationPathBuilder,
    RASAProblem,
    RASAScheduler,
    Service,
)


def build_problem() -> RASAProblem:
    """A toy microservice cluster: a web tier, a cache, and a batch job."""
    services = [
        Service("frontend", demand=6, requests={"cpu": 2.0, "memory": 4.0}),
        Service("api", demand=6, requests={"cpu": 2.0, "memory": 4.0}),
        Service("redis", demand=3, requests={"cpu": 1.0, "memory": 8.0}),
        Service("batch", demand=4, requests={"cpu": 4.0, "memory": 2.0}),
    ]
    machines = [
        Machine(f"node-{i}", capacity={"cpu": 32.0, "memory": 64.0}) for i in range(4)
    ]
    # Traffic volumes between services become affinity weights.
    affinity = {
        ("frontend", "api"): 120.0,
        ("api", "redis"): 80.0,
        ("api", "batch"): 5.0,
    }
    # Spread the frontend for availability: at most 2 containers per node.
    rules = [AntiAffinityRule(services=frozenset({"frontend"}), limit=2)]

    # Pretend the cluster started from an affinity-oblivious placement:
    # each service bunched on its own machine.
    current = np.zeros((4, 4), dtype=np.int64)
    current[0] = [2, 2, 2, 0]  # frontend spread by the rule
    current[1] = [0, 0, 0, 6]  # api far away from frontend and redis
    current[2] = [0, 3, 0, 0]
    current[3] = [4, 0, 0, 0]
    return RASAProblem(
        services,
        machines,
        affinity=affinity,
        anti_affinity=rules,
        current_assignment=current,
    )


def main() -> None:
    problem = build_problem()
    original = Assignment(problem, problem.current_assignment)
    print(f"cluster: {problem}")
    print(f"original gained affinity: {original.gained_affinity(normalized=True):.2%}")

    # Phase 1-2: partition, select per-shard algorithms, solve, merge.
    scheduler = RASAScheduler()
    result = scheduler.schedule(problem, time_limit=30)
    print(f"optimized gained affinity: {result.gained_affinity:.2%}")
    for report in result.reports:
        print(
            f"  shard ({report.subproblem.num_services} services, "
            f"{report.subproblem.num_machines} machines) "
            f"-> {report.selected_algorithm}: {report.result.status}"
        )
    feasibility = result.assignment.check_feasibility()
    print(f"new placement is {feasibility.summary()}")

    # Phase 3: executable migration path with a 75 % SLA floor.
    plan = MigrationPathBuilder(sla_floor=0.75).build(
        problem, original, result.assignment
    )
    print(f"migration: {plan.summary()}; containers moved: {plan.moved_containers}")

    trace = MigrationExecutor(strict=True).execute(problem, original, plan)
    print(
        f"executed {trace.steps_executed} steps; "
        f"minimum alive fraction {trace.min_alive_fraction:.0%}; "
        f"resource overcommit {trace.peak_overcommit:.3f}"
    )
    assert np.array_equal(trace.final.x, result.assignment.x)
    print("cluster reached the optimized placement — done.")


if __name__ == "__main__":
    main()
